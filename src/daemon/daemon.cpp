#include "daemon/daemon.h"

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <stdexcept>
#include <thread>

#include "util/metrics.h"

namespace concilium::daemon {

namespace {

/// Every Cluster::Stats field by name, in declaration order; the checkpoint
/// format and the soak report both enumerate through here so the two can
/// never disagree about what "the stats" are.
template <typename Fn>
void for_each_stat(const runtime::Cluster::Stats& s, Fn&& fn) {
    fn("messages", s.messages);
    fn("delivered", s.delivered);
    fn("dropped_by_forwarder", s.dropped_by_forwarder);
    fn("dropped_by_network", s.dropped_by_network);
    fn("guilty_verdicts", s.guilty_verdicts);
    fn("innocent_verdicts", s.innocent_verdicts);
    fn("accusations_filed", s.accusations_filed);
    fn("revisions_pushed", s.revisions_pushed);
    fn("revisions_applied", s.revisions_applied);
    fn("snapshots_published", s.snapshots_published);
    fn("snapshots_rejected", s.snapshots_rejected);
    fn("lightweight_rounds", s.lightweight_rounds);
    fn("heavyweight_sessions", s.heavyweight_sessions);
    fn("commitments_issued", s.commitments_issued);
    fn("commitments_refused", s.commitments_refused);
    fn("reputation_votes", s.reputation_votes);
    fn("advertisements_accepted", s.advertisements_accepted);
    fn("advertisements_rejected", s.advertisements_rejected);
    fn("forward_retransmissions", s.forward_retransmissions);
    fn("snapshot_retries", s.snapshot_retries);
    fn("snapshot_deliveries_failed", s.snapshot_deliveries_failed);
    fn("duplicates_suppressed", s.duplicates_suppressed);
    fn("churn_leaves", s.churn_leaves);
    fn("churn_rejoins", s.churn_rejoins);
    fn("crashes", s.crashes);
    fn("restarts", s.restarts);
    fn("journal_replays", s.journal_replays);
    fn("recovery_announcements", s.recovery_announcements);
    fn("recovery_repairs_accepted", s.recovery_repairs_accepted);
    fn("recovery_repairs_rejected", s.recovery_repairs_rejected);
    fn("stewardships_resumed", s.stewardships_resumed);
    fn("stewardships_abandoned", s.stewardships_abandoned);
    fn("insufficient_verdicts", s.insufficient_verdicts);
    fn("verdicts_retracted", s.verdicts_retracted);
    fn("partition_activations", s.partition_activations);
    fn("partition_heals", s.partition_heals);
    fn("partition_blocked_packets", s.partition_blocked_packets);
    fn("resync_rounds", s.resync_rounds);
    fn("equivocations_published", s.equivocations_published);
    fn("replays_published", s.replays_published);
    fn("slanders_filed", s.slanders_filed);
    fn("spam_puts", s.spam_puts);
    fn("collusions_pushed", s.collusions_pushed);
    fn("snapshots_rejected_stale", s.snapshots_rejected_stale);
    fn("snapshots_rejected_epoch", s.snapshots_rejected_epoch);
    fn("equivocation_proofs_filed", s.equivocation_proofs_filed);
    fn("revisions_rejected", s.revisions_rejected);
    fn("dht_puts_rejected", s.dht_puts_rejected);
}

/// Cluster rng substream id: keeps the cluster's randomness independent of
/// any other consumer of the trace seed (the generator scripts use the raw
/// seed; message keys come from the trace itself).
constexpr std::uint64_t kClusterStream = 0xDAE07;

struct Instruments {
    util::metrics::Counter& trace_records;
    util::metrics::Counter& messages_fed;
    util::metrics::Counter& messages_delivered;
    util::metrics::Counter& messages_diagnosed;
    util::metrics::Counter& false_accusations;
    util::metrics::Counter& correct_attributions;
    util::metrics::Counter& insufficient_outcomes;
    util::metrics::Counter& orphaned_messages;
    util::metrics::Counter& churn_events;
    util::metrics::Counter& crash_events;
    util::metrics::Counter& fault_downs;
    util::metrics::Counter& attack_roles;
    util::metrics::Counter& checkpoints_written;
    util::metrics::Counter& resume_replays;
    util::metrics::Counter& ticks;
    util::metrics::Counter& io_write_errors;
    util::metrics::Counter& io_write_retries;
    util::metrics::Counter& io_quarantined;
    util::metrics::Counter& io_pruned;
    util::metrics::Gauge& io_faults_injected;
    util::metrics::Gauge& io_degraded;
    util::metrics::SeriesMetric& fed_by_hour;
    util::metrics::SeriesMetric& false_by_hour;
};

Instruments& instruments() {
    auto& reg = util::metrics::Registry::global();
    static Instruments ins{
        reg.counter("daemon.trace_records"),
        reg.counter("daemon.messages_fed"),
        reg.counter("daemon.messages_delivered"),
        reg.counter("daemon.messages_diagnosed"),
        reg.counter("daemon.false_accusations"),
        reg.counter("daemon.correct_attributions"),
        reg.counter("daemon.insufficient_outcomes"),
        reg.counter("daemon.orphaned_messages"),
        reg.counter("daemon.churn_events"),
        reg.counter("daemon.crash_events"),
        reg.counter("daemon.fault_downs"),
        reg.counter("daemon.attack_roles"),
        reg.counter("daemon.checkpoints_written"),
        reg.counter("daemon.resume_replays"),
        reg.counter("daemon.ticks"),
        reg.counter("daemon.io.write_errors"),
        reg.counter("daemon.io.write_retries"),
        reg.counter("daemon.io.checkpoints_quarantined"),
        reg.counter("daemon.io.checkpoints_pruned"),
        reg.gauge("daemon.io.faults_injected"),
        reg.gauge("daemon.io.degraded"),
        reg.series("daemon.messages_fed.by_hour", util::kHour, 400,
                   util::metrics::SeriesMetric::Mode::kSum),
        reg.series("daemon.false_accusations.by_hour", util::kHour, 400,
                   util::metrics::SeriesMetric::Mode::kSum),
    };
    return ins;
}

void apply_role(runtime::NodeBehavior& b, AttackRole role) {
    switch (role) {
        case AttackRole::kDrop: b.drop_forward_probability = 1.0; break;
        case AttackRole::kFlip: b.flip_probe_reports = true; break;
        case AttackRole::kEquivocate: b.equivocate_snapshots = true; break;
        case AttackRole::kReplay: b.replay_snapshots = true; break;
        case AttackRole::kSlander: b.slander = true; break;
        case AttackRole::kSpam: b.spam_accusations = true; break;
        case AttackRole::kCollude: b.collude_revisions = true; break;
    }
}

}  // namespace

/// Substream id for checkpoint-write retry jitter; disjoint from
/// kClusterStream and util::FaultFs's kFaultStream so durability policy
/// never perturbs simulation randomness.
constexpr std::uint64_t kIoRetryStream = 0x10FA17;

Daemon::Daemon(Workload workload, DaemonOptions options)
    : wl_(std::move(workload)),
      opts_(std::move(options)),
      io_(opts_.io != nullptr ? opts_.io
                              : std::make_shared<util::FaultFs>()),
      io_retry_rng_(util::Rng::substream_seed(wl_.seed, kIoRetryStream)) {
    if (opts_.tick <= 0) {
        throw std::invalid_argument("daemon tick must be positive");
    }
    if (opts_.checkpoint_every <= 0) {
        throw std::invalid_argument("checkpoint cadence must be positive");
    }
    if (opts_.settle < 0) {
        throw std::invalid_argument("settle time must be non-negative");
    }
    end_ = wl_.duration + opts_.settle;

    sim::ScenarioParams wp;
    wp.topology = net::small_params();
    wp.topology.end_hosts = wl_.end_hosts;
    wp.topology.stub_domains = wl_.stub_domains;
    wp.overlay_nodes_override = wl_.overlay_nodes;
    wp.duration = wl_.duration;
    wp.seed = wl_.seed;
    world_ = std::make_unique<sim::Scenario>(wp);

    const std::size_t n = world_->overlay_net().size();
    behaviors_.assign(n, runtime::NodeBehavior{});

    auto& ins = instruments();
    std::uint64_t fault_downs_applied = 0;
    for (const auto& rec : wl_.records) {
        if (rec.kind != RecordKind::kMessage &&
            (rec.a >= n || (rec.kind == RecordKind::kFault && rec.b >= n))) {
            throw std::invalid_argument(
                "trace names member beyond the built overlay (" +
                std::to_string(n) + " nodes)");
        }
        switch (rec.kind) {
            case RecordKind::kMessage:
                break;
            case RecordKind::kChurn:
                plan_.churn.push_back(
                    {rec.a, rec.at, rec.at + rec.down});
                break;
            case RecordKind::kCrash:
                plan_.crashes.push_back(
                    {rec.a, rec.at, rec.at + rec.down});
                break;
            case RecordKind::kFault: {
                // The generator names an overlay member pair; the daemon
                // resolves it to IP reality here and downs the middle link
                // of a's path toward b (the interior is where tomography
                // has to work for its answer).  Direct paths only exist
                // toward routing peers, so a non-peer b deterministically
                // redirects to one of a's tree leaves instead.
                const auto a = static_cast<overlay::MemberIndex>(rec.a);
                const auto b = static_cast<overlay::MemberIndex>(rec.b);
                std::span<const net::LinkId> links;
                if (world_->trees().leaf_slot(a, b).has_value()) {
                    links = world_->path_links(a, b);
                } else if (const std::size_t leaves =
                               world_->trees().leaf_ids(a).size();
                           leaves > 0) {
                    links = world_->trees().slot_path_links(
                        a, static_cast<int>(rec.b % leaves));
                }
                if (!links.empty()) {
                    plan_.downs.add_down(links[links.size() / 2],
                                         {rec.at, rec.at + rec.down});
                    ++fault_downs_applied;
                }
                break;
            }
            case RecordKind::kAttack:
                apply_role(behaviors_[rec.a], rec.role);
                break;
        }
    }
    plan_.downs.finalize();
    const bool has_chaos =
        wl_.churns + wl_.crashes + fault_downs_applied > 0;

    ins.trace_records.add(static_cast<std::int64_t>(wl_.records.size()));
    ins.churn_events.add(static_cast<std::int64_t>(wl_.churns));
    ins.crash_events.add(static_cast<std::int64_t>(wl_.crashes));
    ins.fault_downs.add(static_cast<std::int64_t>(fault_downs_applied));
    ins.attack_roles.add(static_cast<std::int64_t>(wl_.attacks));

    cluster_ = std::make_unique<runtime::Cluster>(
        sim_, world_->timeline(), world_->overlay_net(), world_->trees(),
        opts_.params, behaviors_,
        util::Rng(util::Rng::substream_seed(wl_.seed, kClusterStream)));
    if (has_chaos) cluster_->set_chaos(&plan_);

    if (!opts_.checkpoint_dir.empty()) {
        std::filesystem::create_directories(opts_.checkpoint_dir);
        next_checkpoint_ = opts_.checkpoint_every;
        checkpoint_armed_ = true;
        const std::optional<Checkpoint> loaded = load_resume_checkpoint();
        if (loaded.has_value()) {
            // A checkpoint that *parses* but belongs to a different trace
            // or loop geometry is not corruption -- it is an operator
            // error, and falling back past it would silently run the wrong
            // experiment.  Refuse loudly instead.
            const Checkpoint& ck = *loaded;
            const std::string latest =
                latest_checkpoint_file(opts_.checkpoint_dir);
            if (ck.trace_fnv != wl_.content_fnv) {
                throw std::invalid_argument(
                    latest + ": checkpoint was written for a different "
                             "trace (digest mismatch); refusing to resume");
            }
            if (ck.tick != opts_.tick ||
                ck.checkpoint_every != opts_.checkpoint_every) {
                throw std::invalid_argument(
                    latest + ": checkpoint loop geometry (tick / cadence) "
                             "differs from this run; refusing to resume");
            }
            if (ck.sim_clock > end_) {
                throw std::invalid_argument(
                    latest + ": checkpoint is beyond this run's end");
            }
            if (ck.sim_clock > 0) {
                resume_target_ = ck.sim_clock;
                resume_expected_ = ck.to_text();
                ins.resume_replays.add(1);
            }
        }
    }

    cluster_->start();
    health_clock_.store(0, std::memory_order_relaxed);
}

Daemon::~Daemon() = default;

std::optional<Checkpoint> Daemon::load_resume_checkpoint() {
    auto& ins = instruments();
    // Verify-and-fall-back: walk the retained chain newest-first.  A
    // checkpoint that fails to read or parse (torn write, bitrot, tampering,
    // I/O error) is quarantined under a name that states the reason, and the
    // walk falls back to its ancestor.  Replay-from-zero regenerates every
    // cadence checkpoint byte-identically, so a quarantined file costs
    // nothing but the fall-back distance.
    for (const std::string& path : checkpoint_chain(opts_.checkpoint_dir)) {
        try {
            return Checkpoint::parse_file(path, *io_);
        } catch (const std::exception& e) {
            const std::string reason = checkpoint_failure_reason(e.what());
            const std::string moved = quarantine_checkpoint(path, reason);
            ins.io_quarantined.add(1);
            health_quarantined_.fetch_add(1, std::memory_order_relaxed);
            std::string note = "quarantined corrupt checkpoint " + path +
                               " (" + reason + "): " + e.what();
            if (!moved.empty()) {
                note += "; kept as " + moved;
            } else {
                note += "; quarantine rename failed, skipping in place";
            }
            io_notes_.push_back(std::move(note));
        }
    }
    return std::nullopt;
}

void Daemon::feed_until(util::SimTime t) {
    auto& ins = instruments();
    while (next_record_ < wl_.records.size() &&
           wl_.records[next_record_].at < t) {
        const WorkloadRecord& rec = wl_.records[next_record_++];
        if (rec.kind != RecordKind::kMessage) continue;
        const auto from = static_cast<overlay::MemberIndex>(rec.a);
        const std::uint64_t key = rec.key;
        sim_.schedule_at(rec.at, [this, &ins, from, key] {
            // The destination is a pure function of the trace's key64, so
            // every incarnation routes the message identically.
            util::Rng key_rng(key);
            const util::NodeId dest = util::NodeId::random(key_rng);
            ++messages_fed_;
            ++score_.fed;
            ins.messages_fed.add(1);
            ins.fed_by_hour.observe(sim_.now());
            health_fed_.store(messages_fed_, std::memory_order_relaxed);
            cluster_->send(from, dest,
                           [this](const runtime::Cluster::MessageOutcome& o) {
                               complete_message(o);
                           });
        });
    }
}

void Daemon::complete_message(const runtime::Cluster::MessageOutcome& res) {
    auto& ins = instruments();
    ++score_.completed;
    health_completed_.store(score_.completed, std::memory_order_relaxed);
    if (res.delivered) {
        ++score_.delivered;
        ins.messages_delivered.add(1);
        return;
    }
    ++score_.diagnosed;
    ins.messages_diagnosed.add(1);
    if (res.insufficient_evidence) {
        ++score_.insufficient;
        ins.insufficient_outcomes.add(1);
        return;
    }
    if (res.true_drop_hop.has_value()) {
        // A forwarder ate it; naming exactly that node is correct, naming
        // anyone else is a false accusation (soak_recovery's rule).
        const util::NodeId& culprit =
            world_->overlay_net()
                .member(res.route[*res.true_drop_hop])
                .id();
        if (res.blamed == culprit) {
            ++score_.correct_attributions;
            ins.correct_attributions.add(1);
        } else if (res.blamed.has_value()) {
            ++score_.false_accusations;
            ins.false_accusations.add(1);
            ins.false_by_hour.observe(sim_.now());
        }
    } else {
        // The IP network ate the message (or its ack): blaming the network
        // is right, blaming any node is the failure mode the paper is
        // engineered to avoid.
        if (res.blamed.has_value()) {
            ++score_.false_accusations;
            ins.false_accusations.add(1);
            ins.false_by_hour.observe(sim_.now());
        } else if (res.network_blamed) {
            ++score_.correct_attributions;
            ins.correct_attributions.add(1);
        }
    }
}

bool Daemon::run(const std::atomic<bool>* stop, int pace_ms) {
    auto& ins = instruments();
    while (clock_ < end_) {
        if (stop != nullptr && stop->load(std::memory_order_relaxed)) {
            if (!opts_.checkpoint_dir.empty()) {
                write_checkpoint(/*on_cadence=*/false);
            }
            return false;
        }

        util::SimTime next = std::min<util::SimTime>(clock_ + opts_.tick,
                                                     end_);
        if (next_checkpoint_ > 0 && next_checkpoint_ > clock_ &&
            next_checkpoint_ < next) {
            next = next_checkpoint_;
        }
        if (resume_target_.has_value() && *resume_target_ > clock_ &&
            *resume_target_ < next) {
            next = *resume_target_;
        }
        const bool replaying =
            resume_target_.has_value() && clock_ < *resume_target_;
        health_replaying_.store(replaying, std::memory_order_relaxed);

        feed_until(next);
        sim_.run_until(next);
        clock_ = next;
        health_clock_.store(clock_, std::memory_order_relaxed);
        ins.ticks.add(1);

        if (next_checkpoint_ > 0 && clock_ == next_checkpoint_) {
            write_checkpoint(/*on_cadence=*/true);
            next_checkpoint_ += opts_.checkpoint_every;
        }
        if (resume_target_.has_value() && clock_ == *resume_target_) {
            const std::string got = state_text();
            if (got != resume_expected_) {
                throw std::runtime_error(
                    "resume verification failed at sim clock " +
                    std::to_string(clock_) +
                    "us: replayed state does not match the loaded "
                    "checkpoint (non-determinism, or the trace or "
                    "checkpoint changed underneath this run)");
            }
            resume_target_.reset();
            resume_expected_.clear();
            health_replaying_.store(false, std::memory_order_relaxed);
        }

        if (pace_ms > 0 && !replaying && clock_ < end_) {
            std::this_thread::sleep_for(std::chrono::milliseconds(pace_ms));
        }
    }
    ins.orphaned_messages.add(static_cast<std::int64_t>(score_.orphans()));
    ins.io_faults_injected.set(static_cast<double>(io_->injected()));
    return true;
}

Checkpoint Daemon::build_checkpoint() const {
    Checkpoint ck;
    ck.trace_fnv = wl_.content_fnv;
    ck.sim_clock = clock_;
    ck.tick = opts_.tick;
    ck.checkpoint_every = opts_.checkpoint_every;
    ck.messages_fed = messages_fed_;
    ck.checkpoints_written = checkpoints_written_;
    for_each_stat(cluster_->stats(),
                  [&ck](const char* name, std::size_t value) {
                      ck.stats.emplace_back(name,
                                            static_cast<std::uint64_t>(value));
                  });
    const std::size_t n = world_->overlay_net().size();
    ck.journals.reserve(n);
    for (std::size_t m = 0; m < n; ++m) {
        const runtime::NodeJournal& j =
            cluster_->journal(static_cast<overlay::MemberIndex>(m));
        ck.journals.push_back({j.size(), journal_fnv(j)});
    }
    return ck;
}

void Daemon::write_checkpoint(bool on_cadence) {
    // checkpoints_written_ is part of the checkpoint text, so it must
    // advance at every cadence point whether or not a file lands on disk:
    // a degraded run's state_text() has to stay byte-identical to an
    // unfaulted run's, or degradation itself would look like divergence.
    if (on_cadence) ++checkpoints_written_;
    if (!checkpoint_armed_) return;
    auto& ins = instruments();
    const std::string path = opts_.checkpoint_dir + "/checkpoint-" +
                             std::to_string(clock_) + ".ckpt";
    const std::string text = build_checkpoint().to_text();
    for (int attempt = 1;; ++attempt) {
        try {
            write_atomic(path, text, *io_);
            break;
        } catch (const std::runtime_error& e) {
            ins.io_write_errors.add(1);
            const int next_attempt = attempt + 1;
            if (!opts_.io_retry.allows(next_attempt)) {
                // Budget exhausted: disarm checkpointing and keep running.
                // A long run that loses its disk should finish its science
                // and say so on /healthz, not die at 90%.
                checkpoint_armed_ = false;
                health_degraded_.store(true, std::memory_order_relaxed);
                ins.io_degraded.set(1.0);
                io_notes_.push_back(
                    "checkpoint write failed " + std::to_string(attempt) +
                    "x, retry budget exhausted; checkpointing disarmed, "
                    "run continues without durability (" + e.what() + ")");
                return;
            }
            ins.io_write_retries.add(1);
            const util::SimTime backoff =
                opts_.io_retry.delay_before(next_attempt, io_retry_rng_);
            std::this_thread::sleep_for(std::chrono::microseconds(backoff));
        }
    }
    ins.checkpoints_written.add(1);
    if (opts_.checkpoint_keep > 0) {
        const std::size_t pruned = prune_checkpoint_chain(
            opts_.checkpoint_dir, opts_.checkpoint_keep);
        if (pruned > 0) {
            ins.io_pruned.add(static_cast<std::int64_t>(pruned));
        }
    }
    ins.io_faults_injected.set(static_cast<double>(io_->injected()));
}

std::string Daemon::state_text() const { return build_checkpoint().to_text(); }

std::string Daemon::health_text() const {
    std::string out = "ok\n";
    const auto line = [&out](const char* name, std::uint64_t v) {
        out += name;
        out += ' ';
        out += std::to_string(v);
        out += '\n';
    };
    line("sim-clock-us", static_cast<std::uint64_t>(
                             health_clock_.load(std::memory_order_relaxed)));
    line("end-us", static_cast<std::uint64_t>(end_));
    line("replaying",
         health_replaying_.load(std::memory_order_relaxed) ? 1 : 0);
    line("messages-fed", health_fed_.load(std::memory_order_relaxed));
    line("messages-completed",
         health_completed_.load(std::memory_order_relaxed));
    line("io-degraded",
         health_degraded_.load(std::memory_order_relaxed) ? 1 : 0);
    line("checkpoints-quarantined",
         health_quarantined_.load(std::memory_order_relaxed));
    return out;
}

}  // namespace concilium::daemon
