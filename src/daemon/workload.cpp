#include "daemon/workload.h"

#include <cstdio>
#include <stdexcept>

namespace concilium::daemon {

std::uint64_t fnv1a(std::uint64_t h, const void* data,
                    std::size_t n) noexcept {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 1099511628211ULL;
    }
    return h;
}

std::string_view to_string(RecordKind kind) {
    switch (kind) {
        case RecordKind::kMessage: return "msg";
        case RecordKind::kChurn: return "churn";
        case RecordKind::kCrash: return "crash";
        case RecordKind::kFault: return "fault";
        case RecordKind::kAttack: return "attack";
    }
    return "?";
}

std::string_view to_string(AttackRole role) {
    switch (role) {
        case AttackRole::kDrop: return "drop";
        case AttackRole::kFlip: return "flip";
        case AttackRole::kEquivocate: return "equivocate";
        case AttackRole::kReplay: return "replay";
        case AttackRole::kSlander: return "slander";
        case AttackRole::kSpam: return "spam";
        case AttackRole::kCollude: return "collude";
    }
    return "?";
}

namespace {

[[noreturn]] void fail(const std::string& where, const std::string& what) {
    throw std::invalid_argument(where + ": " + what);
}

/// Splits a line into whitespace-separated fields (no quoting, no escapes:
/// the format is deliberately trivial to parse and to generate).
std::vector<std::string_view> split_fields(std::string_view line) {
    std::vector<std::string_view> fields;
    std::size_t i = 0;
    while (i < line.size()) {
        while (i < line.size() && (line[i] == ' ' || line[i] == '\t')) ++i;
        std::size_t start = i;
        while (i < line.size() && line[i] != ' ' && line[i] != '\t') ++i;
        if (i > start) fields.push_back(line.substr(start, i - start));
    }
    return fields;
}

std::uint64_t parse_hex64(std::string_view token, const std::string& where) {
    if (token.empty() || token.size() > 16) {
        fail(where, "expected up to 16 hex digits, got '" +
                        std::string(token) + "'");
    }
    std::uint64_t value = 0;
    for (const char c : token) {
        int digit;
        if (c >= '0' && c <= '9') {
            digit = c - '0';
        } else if (c >= 'a' && c <= 'f') {
            digit = 10 + (c - 'a');
        } else if (c >= 'A' && c <= 'F') {
            digit = 10 + (c - 'A');
        } else {
            fail(where, "expected hex digits, got '" + std::string(token) +
                            "'");
        }
        value = (value << 4) | static_cast<std::uint64_t>(digit);
    }
    return value;
}

AttackRole parse_role(std::string_view token, const std::string& where) {
    for (const AttackRole role :
         {AttackRole::kDrop, AttackRole::kFlip, AttackRole::kEquivocate,
          AttackRole::kReplay, AttackRole::kSlander, AttackRole::kSpam,
          AttackRole::kCollude}) {
        if (token == to_string(role)) return role;
    }
    fail(where, "unknown attack role '" + std::string(token) + "'");
}

std::uint32_t parse_member(std::string_view token, const std::string& where,
                           std::size_t overlay_nodes) {
    const std::uint64_t value = parse_uint(token, where);
    if (value >= overlay_nodes) {
        fail(where, "member " + std::to_string(value) +
                        " out of range (overlay has " +
                        std::to_string(overlay_nodes) + " nodes)");
    }
    return static_cast<std::uint32_t>(value);
}

}  // namespace

std::uint64_t parse_uint(std::string_view token, const std::string& where) {
    if (token.empty() || token.size() > 19) {
        fail(where, "expected a non-negative integer, got '" +
                        std::string(token) + "'");
    }
    std::uint64_t value = 0;
    for (const char c : token) {
        if (c < '0' || c > '9') {
            fail(where, "expected a non-negative integer, got '" +
                            std::string(token) + "'");
        }
        value = value * 10 + static_cast<std::uint64_t>(c - '0');
    }
    return value;
}

util::SimTime parse_time(std::string_view token, const std::string& where) {
    std::size_t digits = 0;
    while (digits < token.size() && token[digits] >= '0' &&
           token[digits] <= '9') {
        ++digits;
    }
    const std::string_view unit = token.substr(digits);
    util::SimTime scale = 0;
    if (unit == "us") {
        scale = util::kMicrosecond;
    } else if (unit == "ms") {
        scale = util::kMillisecond;
    } else if (unit == "s") {
        scale = util::kSecond;
    } else if (unit == "min") {
        scale = util::kMinute;
    } else if (unit == "h") {
        scale = util::kHour;
    } else {
        fail(where, "expected a time like 90s / 250ms / 2h, got '" +
                        std::string(token) + "'");
    }
    const std::uint64_t value = parse_uint(token.substr(0, digits), where);
    if (value > static_cast<std::uint64_t>(INT64_MAX) / scale) {
        fail(where, "time overflows: '" + std::string(token) + "'");
    }
    return static_cast<util::SimTime>(value) * scale;
}

Workload Workload::parse(std::string_view text, std::string_view origin) {
    Workload wl;
    wl.content_fnv = fnv1a(kFnvOffset, text.data(), text.size());

    bool saw_header = false;
    bool saw_records = false;
    bool saw_end = false;
    bool seen_directive[5] = {};  // seed nodes hosts stubs duration
    util::SimTime last_at = 0;
    std::size_t line_no = 0;
    std::size_t pos = 0;

    while (pos <= text.size()) {
        const std::size_t eol = text.find('\n', pos);
        const std::string_view line =
            text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                           : eol - pos);
        pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;
        ++line_no;
        if (pos > text.size() && line.empty()) break;  // trailing EOF

        const std::string where =
            std::string(origin) + ":" + std::to_string(line_no);

        if (!saw_header) {
            if (line != "concilium-trace v1") {
                fail(where,
                     "not a workload trace (first line must be "
                     "'concilium-trace v1')");
            }
            saw_header = true;
            continue;
        }

        if (line.empty() || line[0] == '#') continue;
        if (saw_end) fail(where, "content after the 'end' trailer");

        const auto fields = split_fields(line);
        if (fields.empty()) continue;  // whitespace-only line
        const std::string_view kind = fields[0];

        // --- trailer ---------------------------------------------------
        if (kind == "end") {
            if (fields.size() != 2) fail(where, "'end' takes the record count");
            const std::uint64_t count = parse_uint(fields[1], where);
            if (count != wl.records.size()) {
                fail(where, "end trailer says " + std::to_string(count) +
                                " records but " +
                                std::to_string(wl.records.size()) +
                                " were parsed (truncated or edited trace?)");
            }
            saw_end = true;
            continue;
        }

        // --- directives (preamble only) --------------------------------
        const auto directive = [&](int slot) {
            if (saw_records) {
                fail(where, "directive '" + std::string(kind) +
                                "' after the first record");
            }
            if (seen_directive[slot]) {
                fail(where,
                     "duplicate directive '" + std::string(kind) + "'");
            }
            seen_directive[slot] = true;
            if (fields.size() != 2) {
                fail(where, "'" + std::string(kind) + "' takes one value");
            }
        };
        if (kind == "seed") {
            directive(0);
            wl.seed = parse_uint(fields[1], where);
            continue;
        }
        if (kind == "nodes") {
            directive(1);
            wl.overlay_nodes = parse_uint(fields[1], where);
            if (wl.overlay_nodes < 8 || wl.overlay_nodes > 100000) {
                fail(where, "nodes must be in [8, 100000]");
            }
            continue;
        }
        if (kind == "hosts") {
            directive(2);
            wl.end_hosts = parse_uint(fields[1], where);
            if (wl.end_hosts < 16) fail(where, "hosts must be >= 16");
            continue;
        }
        if (kind == "stubs") {
            directive(3);
            wl.stub_domains = parse_uint(fields[1], where);
            if (wl.stub_domains < 2) fail(where, "stubs must be >= 2");
            continue;
        }
        if (kind == "duration") {
            directive(4);
            wl.duration = parse_time(fields[1], where);
            if (wl.duration <= 0) fail(where, "duration must be positive");
            continue;
        }

        // --- records ---------------------------------------------------
        WorkloadRecord rec;
        if (kind == "msg") {
            if (fields.size() != 4) {
                fail(where, "'msg' takes: time member key64");
            }
            rec.kind = RecordKind::kMessage;
            rec.at = parse_time(fields[1], where);
            rec.a = parse_member(fields[2], where, wl.overlay_nodes);
            rec.key = parse_hex64(fields[3], where);
            ++wl.messages;
        } else if (kind == "churn" || kind == "crash") {
            if (fields.size() != 4) {
                fail(where, "'" + std::string(kind) +
                                "' takes: time member down-for");
            }
            rec.kind = kind == "churn" ? RecordKind::kChurn
                                       : RecordKind::kCrash;
            rec.at = parse_time(fields[1], where);
            rec.a = parse_member(fields[2], where, wl.overlay_nodes);
            rec.down = parse_time(fields[3], where);
            if (rec.down <= 0) fail(where, "down-for must be positive");
            ++(kind == "churn" ? wl.churns : wl.crashes);
        } else if (kind == "fault") {
            if (fields.size() != 5) {
                fail(where, "'fault' takes: time member member down-for");
            }
            rec.kind = RecordKind::kFault;
            rec.at = parse_time(fields[1], where);
            rec.a = parse_member(fields[2], where, wl.overlay_nodes);
            rec.b = parse_member(fields[3], where, wl.overlay_nodes);
            rec.down = parse_time(fields[4], where);
            if (rec.down <= 0) fail(where, "down-for must be positive");
            if (rec.a == rec.b) fail(where, "fault endpoints must differ");
            ++wl.faults;
        } else if (kind == "attack") {
            if (fields.size() != 4) {
                fail(where, "'attack' takes: time member role");
            }
            rec.kind = RecordKind::kAttack;
            rec.at = parse_time(fields[1], where);
            rec.a = parse_member(fields[2], where, wl.overlay_nodes);
            rec.role = parse_role(fields[3], where);
            ++wl.attacks;
        } else {
            fail(where, "unknown record kind '" + std::string(kind) + "'");
        }

        if (rec.at < last_at) {
            fail(where, "out-of-order timestamp (records must be sorted)");
        }
        last_at = rec.at;
        saw_records = true;
        wl.records.push_back(rec);
    }

    if (!saw_header) {
        fail(std::string(origin) + ":1",
             "not a workload trace (empty input)");
    }
    if (!saw_end) {
        fail(std::string(origin) + ":" + std::to_string(line_no),
             "missing 'end' trailer (truncated trace?)");
    }
    return wl;
}

Workload Workload::parse_file(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) {
        throw std::invalid_argument(path + ": cannot open trace file");
    }
    std::string text;
    char buf[1 << 16];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
        text.append(buf, n);
    }
    std::fclose(f);
    return parse(text, path);
}

Workload Workload::parse_file(const std::string& path, util::FaultFs& fs) {
    return parse(fs.read_file(path), path);
}

}  // namespace concilium::daemon
