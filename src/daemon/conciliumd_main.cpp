// conciliumd: the Concilium protocol as a long-running service (DAEMON.md).
//
//   conciliumd --trace workload.trace [--checkpoint-dir DIR] [--http-port N]
//
// Streams the trace through a runtime::Cluster, cuts periodic checkpoints,
// and serves /metrics, /metrics.json, /healthz, and /spans while running.
// SIGTERM/SIGINT checkpoint and exit cleanly; SIGKILL loses nothing that
// matters -- the next start on the same checkpoint directory replays and
// resumes, byte-identical to a run that was never interrupted.

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "daemon/daemon.h"
#include "daemon/http.h"
#include "daemon/workload.h"
#include "util/metrics.h"
#include "util/spans.h"

namespace {

using namespace concilium;

std::atomic<bool> g_stop{false};

void on_signal(int /*sig*/) { g_stop.store(true, std::memory_order_relaxed); }

int usage(const char* argv0) {
    std::fprintf(
        stderr,
        "usage: %s --trace FILE [options]\n"
        "  --trace FILE            workload trace (required; see DAEMON.md)\n"
        "  --checkpoint-dir DIR    write periodic checkpoints; resume from\n"
        "                          the newest one on start\n"
        "  --checkpoint-every-sec N   checkpoint cadence in sim seconds "
        "(default 600)\n"
        "  --tick-sec N            loop tick in sim seconds (default 30)\n"
        "  --settle-sec N          post-trace settle time (default 300)\n"
        "  --pace-ms N             wall sleep per live tick (default 0)\n"
        "  --http-port N           serve /metrics /metrics.json /healthz\n"
        "                          /spans on 127.0.0.1:N (0 = ephemeral)\n"
        "  --port-file FILE        write the bound port (for ephemeral)\n"
        "  --state-out FILE        final state text (checkpoint format)\n"
        "  --metrics-out FILE      final metrics snapshot JSON\n"
        "  --spans-out FILE        Chrome trace JSON of recorded spans\n"
        "  --checkpoint-keep N     retain only the newest N checkpoints\n"
        "                          (default 0 = keep all)\n"
        "  --io-faults SPEC        inject storage faults at the given\n"
        "                          per-site rates, e.g. eio:0.01,short:0.01,\n"
        "                          torn_rename:0.005,bitrot:0.001,\n"
        "                          enospc:0.002\n"
        "  --io-faults-seed N      fault-schedule seed (default 0)\n"
        "  --io-fault-at SITE:KIND inject exactly one fault at global I/O\n"
        "                          site SITE (kinds above plus 'crash')\n"
        "  --io-ops-out FILE       write the final I/O site count (for the\n"
        "                          crashpoint sweep to enumerate sites)\n",
        argv0);
    return 2;
}

bool write_file(const std::string& path, const std::string& text) {
    std::FILE* f = std::fopen(path.c_str(), "wb");
    if (f == nullptr) return false;
    const bool ok = std::fwrite(text.data(), 1, text.size(), f) ==
                    text.size();
    std::fclose(f);
    return ok;
}

}  // namespace

int main(int argc, char** argv) {
    std::string trace_path;
    std::string checkpoint_dir;
    std::string state_out;
    std::string metrics_out;
    std::string spans_out;
    std::string port_file;
    std::string io_faults_text;
    std::string io_fault_at;
    std::string io_ops_out;
    std::uint64_t io_faults_seed = 0;
    long http_port = -1;  // -1 = no server
    int pace_ms = 0;
    daemon::DaemonOptions opts;

    for (int i = 1; i < argc; ++i) {
        const std::string_view arg = argv[i];
        const auto value = [&]() -> const char* {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "conciliumd: %s needs a value\n",
                             argv[i]);
                std::exit(2);
            }
            return argv[++i];
        };
        if (arg == "--trace") {
            trace_path = value();
        } else if (arg == "--checkpoint-dir") {
            checkpoint_dir = value();
        } else if (arg == "--checkpoint-every-sec") {
            opts.checkpoint_every = std::atoll(value()) * util::kSecond;
        } else if (arg == "--tick-sec") {
            opts.tick = std::atoll(value()) * util::kSecond;
        } else if (arg == "--settle-sec") {
            opts.settle = std::atoll(value()) * util::kSecond;
        } else if (arg == "--pace-ms") {
            pace_ms = std::atoi(value());
        } else if (arg == "--http-port") {
            http_port = std::atol(value());
        } else if (arg == "--port-file") {
            port_file = value();
        } else if (arg == "--state-out") {
            state_out = value();
        } else if (arg == "--metrics-out") {
            metrics_out = value();
        } else if (arg == "--spans-out") {
            spans_out = value();
        } else if (arg == "--checkpoint-keep") {
            opts.checkpoint_keep =
                static_cast<std::size_t>(std::atoll(value()));
        } else if (arg == "--io-faults") {
            io_faults_text = value();
        } else if (arg == "--io-faults-seed") {
            io_faults_seed = std::strtoull(value(), nullptr, 10);
        } else if (arg == "--io-fault-at") {
            io_fault_at = value();
        } else if (arg == "--io-ops-out") {
            io_ops_out = value();
        } else if (arg == "--help" || arg == "-h") {
            return usage(argv[0]);
        } else {
            std::fprintf(stderr, "conciliumd: unknown flag %s\n", argv[i]);
            return usage(argv[0]);
        }
    }
    if (trace_path.empty()) {
        std::fprintf(stderr, "conciliumd: --trace is required\n");
        return usage(argv[0]);
    }

    util::spans::Recorder::global().enable();

    // The storage seam is built before the first file is touched so the
    // trace read, every checkpoint load, and every checkpoint write share
    // one deterministic fault schedule (site indices are global).
    std::shared_ptr<util::FaultFs> io;
    try {
        io = std::make_shared<util::FaultFs>(
            util::IoFaultSpec::parse(io_faults_text, io_faults_seed));
        if (!io_fault_at.empty()) io->arm_one_shot(io_fault_at);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "conciliumd: %s\n", e.what());
        return 2;
    }

    // Strict parse first: a malformed trace must fail fast, before any
    // world building, with the offending line on stderr.
    daemon::Workload workload;
    try {
        workload = daemon::Workload::parse_file(trace_path, *io);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "conciliumd: bad trace: %s\n", e.what());
        return 1;
    }

    opts.checkpoint_dir = checkpoint_dir;
    opts.io = io;
    std::unique_ptr<daemon::Daemon> daemon_ptr;
    try {
        daemon_ptr = std::make_unique<daemon::Daemon>(std::move(workload),
                                                      std::move(opts));
    } catch (const std::exception& e) {
        std::fprintf(stderr, "conciliumd: %s\n", e.what());
        return 1;
    }
    daemon::Daemon& d = *daemon_ptr;

    // Quarantine and degradation notices must reach the operator even with
    // logging off (the default); they go to stderr as they appear.
    std::size_t notes_printed = 0;
    const auto flush_io_notes = [&] {
        const auto& notes = d.io_notes();
        for (; notes_printed < notes.size(); ++notes_printed) {
            std::fprintf(stderr, "conciliumd: %s\n",
                         notes[notes_printed].c_str());
        }
    };
    flush_io_notes();

    daemon::HttpServer server;
    if (http_port >= 0) {
        daemon::HttpServer::Handlers handlers;
        handlers.metrics_text = [] {
            return util::metrics::Registry::global().snapshot().to_text();
        };
        handlers.metrics_json = [] {
            return util::metrics::Registry::global().snapshot().to_json();
        };
        handlers.health = [&d] { return d.health_text(); };
        handlers.spans = [] {
            return util::spans::Recorder::global().to_chrome_json();
        };
        try {
            server.start(static_cast<std::uint16_t>(http_port),
                         std::move(handlers));
        } catch (const std::exception& e) {
            std::fprintf(stderr, "conciliumd: %s\n", e.what());
            return 1;
        }
        if (!port_file.empty() &&
            !write_file(port_file, std::to_string(server.port()) + "\n")) {
            std::fprintf(stderr, "conciliumd: cannot write %s\n",
                         port_file.c_str());
            return 1;
        }
        std::printf("conciliumd: listening on 127.0.0.1:%u\n",
                    static_cast<unsigned>(server.port()));
        std::fflush(stdout);
    }

    std::signal(SIGTERM, on_signal);
    std::signal(SIGINT, on_signal);

    if (d.resumed()) {
        std::printf("conciliumd: resuming -- replaying to sim clock\n");
        std::fflush(stdout);
    }

    bool finished = false;
    try {
        finished = d.run(&g_stop, pace_ms);
    } catch (const std::exception& e) {
        flush_io_notes();
        std::fprintf(stderr, "conciliumd: %s\n", e.what());
        return 1;
    }
    flush_io_notes();

    server.stop();

    if (!io_ops_out.empty() &&
        !write_file(io_ops_out, std::to_string(d.io().ops()) + "\n")) {
        std::fprintf(stderr, "conciliumd: cannot write %s\n",
                     io_ops_out.c_str());
        return 1;
    }

    if (!metrics_out.empty() &&
        !write_file(metrics_out,
                    util::metrics::Registry::global().snapshot().to_json())) {
        std::fprintf(stderr, "conciliumd: cannot write %s\n",
                     metrics_out.c_str());
        return 1;
    }
    if (!spans_out.empty() &&
        !write_file(spans_out,
                    util::spans::Recorder::global().to_chrome_json())) {
        std::fprintf(stderr, "conciliumd: cannot write %s\n",
                     spans_out.c_str());
        return 1;
    }

    if (!finished) {
        std::printf("conciliumd: stopped at sim clock %lldus (%s)\n",
                    static_cast<long long>(d.clock()),
                    d.io_degraded() ? "checkpointing degraded, NOT saved"
                                    : "checkpointed");
        return 0;
    }

    if (!state_out.empty() && !write_file(state_out, d.state_text())) {
        std::fprintf(stderr, "conciliumd: cannot write %s\n",
                     state_out.c_str());
        return 1;
    }

    const auto& score = d.score();
    std::printf(
        "conciliumd: done  sim=%llds fed=%llu delivered=%llu diagnosed=%llu "
        "false_acc=%llu correct=%llu insufficient=%llu orphans=%llu\n",
        static_cast<long long>(d.clock() / util::kSecond),
        static_cast<unsigned long long>(score.fed),
        static_cast<unsigned long long>(score.delivered),
        static_cast<unsigned long long>(score.diagnosed),
        static_cast<unsigned long long>(score.false_accusations),
        static_cast<unsigned long long>(score.correct_attributions),
        static_cast<unsigned long long>(score.insufficient),
        static_cast<unsigned long long>(score.orphans()));
    if (d.io_degraded()) {
        std::printf(
            "conciliumd: WARNING run finished io-degraded -- checkpoint "
            "writes were disarmed after exhausting the retry budget\n");
    }
    return 0;
}
