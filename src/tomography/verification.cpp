#include "tomography/verification.h"

#include <stdexcept>

namespace concilium::tomography {

std::vector<bool> detect_fabricators(std::size_t leaf_count,
                                     std::span<const ProbeRecord> probes) {
    std::vector<bool> flagged(leaf_count, false);
    for (const ProbeRecord& rec : probes) {
        for (std::size_t leaf = 0; leaf < leaf_count; ++leaf) {
            if (rec.acked[leaf] && !rec.nonce_valid[leaf]) {
                flagged[leaf] = true;
            }
        }
    }
    return flagged;
}

std::vector<bool> detect_suppressors(const ProbeTree& tree,
                                     std::span<const ProbeRecord> probes,
                                     const SuppressionTestParams& params) {
    const std::size_t leaf_count = tree.leaves().size();
    std::vector<bool> flagged(leaf_count, false);

    // For each leaf, evidence = stripes where some leaf in a *sibling*
    // subtree acknowledged, proving delivery up to the shared ancestor.
    // The immediate parent is usually a pass-through router with a single
    // child, so we climb to the nearest ancestor that has leaf descendants
    // outside this leaf's own subtree.
    for (std::size_t leaf = 0; leaf < leaf_count; ++leaf) {
        const auto node_idx = tree.node_of(tree.leaves()[leaf]);
        if (!node_idx.has_value()) continue;

        std::vector<int> own = tree.leaf_slots_under(*node_idx);
        std::vector<bool> is_own(leaf_count, false);
        for (const int s : own) is_own[static_cast<std::size_t>(s)] = true;

        std::vector<int> siblings;
        for (int cur = *node_idx;
             siblings.empty() &&
             tree.nodes()[static_cast<std::size_t>(cur)].parent >= 0;) {
            const int anc = tree.nodes()[static_cast<std::size_t>(cur)].parent;
            for (const int s : tree.leaf_slots_under(anc)) {
                if (!is_own[static_cast<std::size_t>(s)]) siblings.push_back(s);
            }
            cur = anc;
        }
        if (siblings.empty()) continue;  // no cross-check possible

        int evidence = 0;
        int acked_given_evidence = 0;
        for (const ProbeRecord& rec : probes) {
            bool sibling_ack = false;
            for (const int s : siblings) {
                const auto i = static_cast<std::size_t>(s);
                if (rec.acked[i] && rec.nonce_valid[i]) {
                    sibling_ack = true;
                    break;
                }
            }
            if (!sibling_ack) continue;
            ++evidence;
            if (rec.acked[leaf] && rec.nonce_valid[leaf]) {
                ++acked_given_evidence;
            }
        }
        if (evidence < params.min_evidence) continue;
        const double conditional = static_cast<double>(acked_given_evidence) /
                                   static_cast<double>(evidence);
        if (conditional < params.min_conditional_ack_rate) {
            flagged[leaf] = true;
        }
    }
    return flagged;
}

std::vector<ProbeRecord> exclude_leaves(std::span<const ProbeRecord> probes,
                                        const std::vector<bool>& excluded) {
    std::vector<ProbeRecord> out(probes.begin(), probes.end());
    for (ProbeRecord& rec : out) {
        if (rec.acked.size() != excluded.size()) {
            throw std::invalid_argument("exclude_leaves: size mismatch");
        }
        for (std::size_t leaf = 0; leaf < excluded.size(); ++leaf) {
            if (excluded[leaf]) {
                rec.acked[leaf] = false;
                rec.nonce_valid[leaf] = false;
            }
        }
    }
    return out;
}

}  // namespace concilium::tomography
