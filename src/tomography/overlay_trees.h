// Probe trees for every overlay member.
//
// Builds, for each member of an overlay, the tree T_H spanning it and its
// routing peers (Section 3.2), together with the peer -> leaf-slot mapping
// and the flat list of (host, routing peer) IP paths -- the candidate set
// that the failure model of Section 4.2 draws from.
//
// Every per-(member, peer) link path produced by the per-member BFS is
// carved out of one shared arena (PathOracle::paths_into) and served as a
// span.  The hot query path_links() -- hit once per packet transmission and
// once per judgment -- is therefore a bounds-checked table read with zero
// allocation, instead of rebuilding a vector by walking tree parents.

#pragma once

#include <optional>
#include <span>
#include <utility>
#include <vector>

#include "net/paths.h"
#include "net/topology.h"
#include "overlay/network.h"
#include "tomography/tree.h"
#include "util/arena.h"

namespace concilium::tomography {

class OverlayTrees {
  public:
    OverlayTrees(const overlay::OverlayNetwork& net,
                 const net::Topology& topology);

    [[nodiscard]] const ProbeTree& tree(overlay::MemberIndex m) const {
        return trees_.at(m);
    }
    [[nodiscard]] std::size_t size() const noexcept { return trees_.size(); }

    /// Leaf slot of `peer` in `m`'s tree, when the IP path exists.
    [[nodiscard]] std::optional<int> leaf_slot(
        overlay::MemberIndex m, overlay::MemberIndex peer) const;

    /// IP links of the path m -> peer, as a span into shared arena storage
    /// (valid for the lifetime of this OverlayTrees).  Throws when no path
    /// exists.
    [[nodiscard]] std::span<const net::LinkId> path_links(
        overlay::MemberIndex m, overlay::MemberIndex peer) const;

    /// IP links of m's path to leaf slot `slot` (span into the arena).
    /// The per-round probe loops index leaves directly, skipping even the
    /// peer -> slot resolution.
    [[nodiscard]] std::span<const net::LinkId> slot_path_links(
        overlay::MemberIndex m, int slot) const {
        return leaf_paths_.at(m).at(static_cast<std::size_t>(slot));
    }

    /// Overlay identifiers of `m`'s tree leaves, in leaf-slot order (the
    /// argument make_snapshot() wants).
    [[nodiscard]] const std::vector<util::NodeId>& leaf_ids(
        overlay::MemberIndex m) const {
        return leaf_ids_.at(m);
    }

    /// Member behind each leaf slot of m's tree.
    [[nodiscard]] const std::vector<overlay::MemberIndex>& leaf_members(
        overlay::MemberIndex m) const {
        return leaf_members_.at(m);
    }

    /// All (member, routing peer) paths with at least one hop; the failure
    /// model's candidate set.
    [[nodiscard]] const std::vector<net::Path>& member_peer_paths() const {
        return member_peer_paths_;
    }

    /// Bytes of arena-backed path storage (diagnostics / bench reporting).
    [[nodiscard]] std::size_t path_bytes() const noexcept {
        return arena_.bytes_used();
    }

  private:
    /// Backs every per-(member, peer) router/link sequence.  Declared first
    /// so the spans below die before the storage they point into.
    util::Arena arena_;
    std::vector<ProbeTree> trees_;
    /// Per member: (peer, leaf slot) sorted by peer for binary search.  A
    /// member has a few dozen routing peers, so a sorted probe beats a hash
    /// map on both locality and determinism.
    std::vector<std::vector<std::pair<overlay::MemberIndex, int>>>
        leaf_slots_;
    /// Per member, per leaf slot: the m -> peer link path in the arena.
    std::vector<std::vector<std::span<const net::LinkId>>> leaf_paths_;
    std::vector<std::vector<util::NodeId>> leaf_ids_;
    std::vector<std::vector<overlay::MemberIndex>> leaf_members_;
    std::vector<net::Path> member_peer_paths_;
};

}  // namespace concilium::tomography
