// Probe trees for every overlay member.
//
// Builds, for each member of an overlay, the tree T_H spanning it and its
// routing peers (Section 3.2), together with the peer -> leaf-slot mapping
// and the flat list of (host, routing peer) IP paths -- the candidate set
// that the failure model of Section 4.2 draws from.

#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "net/paths.h"
#include "net/topology.h"
#include "overlay/network.h"
#include "tomography/tree.h"

namespace concilium::tomography {

class OverlayTrees {
  public:
    OverlayTrees(const overlay::OverlayNetwork& net,
                 const net::Topology& topology);

    [[nodiscard]] const ProbeTree& tree(overlay::MemberIndex m) const {
        return trees_.at(m);
    }
    [[nodiscard]] std::size_t size() const noexcept { return trees_.size(); }

    /// Leaf slot of `peer` in `m`'s tree, when the IP path exists.
    [[nodiscard]] std::optional<int> leaf_slot(
        overlay::MemberIndex m, overlay::MemberIndex peer) const;

    /// IP links of the path m -> peer.  Throws when no path exists.
    [[nodiscard]] std::vector<net::LinkId> path_links(
        overlay::MemberIndex m, overlay::MemberIndex peer) const;

    /// Overlay identifiers of `m`'s tree leaves, in leaf-slot order (the
    /// argument make_snapshot() wants).
    [[nodiscard]] const std::vector<util::NodeId>& leaf_ids(
        overlay::MemberIndex m) const {
        return leaf_ids_.at(m);
    }

    /// Member behind each leaf slot of m's tree.
    [[nodiscard]] const std::vector<overlay::MemberIndex>& leaf_members(
        overlay::MemberIndex m) const {
        return leaf_members_.at(m);
    }

    /// All (member, routing peer) paths with at least one hop; the failure
    /// model's candidate set.
    [[nodiscard]] const std::vector<net::Path>& member_peer_paths() const {
        return member_peer_paths_;
    }

  private:
    std::vector<ProbeTree> trees_;
    std::vector<std::unordered_map<overlay::MemberIndex, int>> leaf_slots_;
    std::vector<std::vector<util::NodeId>> leaf_ids_;
    std::vector<std::vector<overlay::MemberIndex>> leaf_members_;
    std::vector<net::Path> member_peer_paths_;
};

}  // namespace concilium::tomography
