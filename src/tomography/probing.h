// Striped-unicast probe simulation.
//
// "H generates a single probe packet for each routing peer, but it issues
// these packets back to back.  Since these packets will stay close to each
// other as they traverse shared interior routers, they emulate a single
// multicast packet sent to the leaves of a multicast tree." (Section 3.2)
//
// A stripe is therefore modelled as one virtual multicast probe: every tree
// link is sampled once, and a leaf receives the probe iff all links on its
// root path passed.  Leaves acknowledge; misbehaving leaves may suppress
// acknowledgments for received probes or fabricate acknowledgments for lost
// ones (Section 3.3) -- fabricated acks carry an invalid nonce because the
// nonce travelled only inside the lost probe.

#pragma once

#include <functional>
#include <span>
#include <vector>

#include "net/topology.h"
#include "tomography/tree.h"
#include "util/rng.h"
#include "util/time.h"

namespace concilium::tomography {

/// Probability that one packet crossing `link` at time t survives.
using PassProbabilityFn =
    std::function<double(net::LinkId, util::SimTime)>;

/// Per-leaf misbehaviour during probing (Section 3.3's faulty leaves).
struct LeafBehavior {
    /// Probability of dropping the acknowledgment for a received probe.
    double suppress_ack_probability = 0.0;
    /// Acknowledge probes that were never received (spurious responses).
    bool fabricate_acks = false;
};

/// Outcome of one stripe for every leaf of the tree.
struct ProbeRecord {
    std::vector<bool> received;     ///< probe physically reached the leaf
    std::vector<bool> acked;        ///< root saw an acknowledgment
    std::vector<bool> nonce_valid;  ///< the ack echoed the probe's nonce
};

/// Samples one striped (multicast-emulating) probe of the tree at time t.
/// `behaviors` may be empty (all leaves honest) or one entry per leaf slot.
ProbeRecord sample_striped_probe(const ProbeTree& tree,
                                 const PassProbabilityFn& pass_probability,
                                 util::SimTime t,
                                 std::span<const LeafBehavior> behaviors,
                                 util::Rng& rng);

struct HeavyweightParams {
    int probe_count = 200;              ///< stripes per session
    util::SimTime spacing = 50 * util::kMillisecond;  ///< stripe interval
};

/// A heavyweight probing session: many stripes across a short window.
struct HeavyweightResult {
    std::vector<ProbeRecord> probes;
    std::vector<int> ack_counts;  ///< per leaf slot (nonce-valid acks only)
    util::SimTime started_at = 0;
    util::SimTime finished_at = 0;

    [[nodiscard]] double ack_rate(int leaf_slot) const {
        return probes.empty()
                   ? 0.0
                   : static_cast<double>(ack_counts.at(
                         static_cast<std::size_t>(leaf_slot))) /
                         static_cast<double>(probes.size());
    }
};

/// Runs a full heavyweight session starting at t0 (Duffield's full scheme).
HeavyweightResult run_heavyweight_session(
    const ProbeTree& tree, const PassProbabilityFn& pass_probability,
    util::SimTime t0, const HeavyweightParams& params,
    std::span<const LeafBehavior> behaviors, util::Rng& rng);

/// Lightweight probing (Section 3.2): one stripe doubling as the availability
/// probe, plus `retries` follow-up probes to silent leaves to separate
/// offline peers from lossy links.  Returns, per leaf, whether any probe got
/// through.
struct LightweightResult {
    std::vector<bool> responsive;  ///< per leaf slot
    ProbeRecord first_stripe;
};
LightweightResult run_lightweight_probe(
    const ProbeTree& tree, const PassProbabilityFn& pass_probability,
    util::SimTime t, int retries, std::span<const LeafBehavior> behaviors,
    util::Rng& rng);

}  // namespace concilium::tomography
