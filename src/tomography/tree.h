// Probe trees and forests.
//
// "Each host H is connected to its routing peers by a set of links in the
// underlying IP network.  These links induce a communication tree T_H whose
// root is H and whose leaves are H's routing peers.  We define the forest
// F_H as the union of the tree rooted at H and the trees rooted at each of
// H's routing peers.  Concilium's goal is to estimate link quality in F_H."
// (Section 3.2)
//
// Shortest paths from a single source form a tree by construction, so T_H is
// assembled by merging the root's paths to each routing peer.

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "net/paths.h"
#include "net/topology.h"

namespace concilium::tomography {

/// The IP-level tree spanning one host and its routing peers.
class ProbeTree {
  public:
    struct Node {
        net::RouterId router = net::kInvalidRouter;
        net::LinkId via = net::kInvalidLink;  ///< link to parent (none at root)
        int parent = -1;
        std::vector<int> children;
        /// Index into leaves() when this node is a probed leaf endpoint.
        std::optional<int> leaf_slot;
    };

    /// Builds the tree for `root` from its paths to each leaf host.  Paths
    /// must all start at `root`; empty paths (unreachable leaves) are
    /// skipped.  Paths from one BFS never disagree on a router's parent; a
    /// disagreeing path set throws std::invalid_argument.
    ProbeTree(net::RouterId root, std::span<const net::Path> paths);

    /// Same contract over arena-backed path views (PathOracle::paths_into).
    ProbeTree(net::RouterId root, std::span<const net::PathView> paths);

    [[nodiscard]] net::RouterId root() const noexcept { return root_; }
    [[nodiscard]] const std::vector<Node>& nodes() const noexcept {
        return nodes_;
    }
    /// Probed leaf routers, in construction order.  (A "leaf" is a probed
    /// endpoint; in degenerate topologies it can be an interior router of
    /// the tree as well.)
    [[nodiscard]] const std::vector<net::RouterId>& leaves() const noexcept {
        return leaves_;
    }

    /// All distinct links in the tree.
    [[nodiscard]] const std::vector<net::LinkId>& links() const noexcept {
        return links_;
    }

    /// Tree-node index of a router, if present.
    [[nodiscard]] std::optional<int> node_of(net::RouterId router) const;

    /// Links from the root to the given leaf slot, root-side first.
    [[nodiscard]] std::vector<net::LinkId> path_links(int leaf_slot) const;

    /// Leaf slots in the subtree rooted at node index n.
    [[nodiscard]] std::vector<int> leaf_slots_under(int node) const;

  private:
    /// Grafts one root-anchored path into the tree; shared by both
    /// constructors.
    void insert_path(std::span<const net::RouterId> routers,
                     std::span<const net::LinkId> links,
                     std::unordered_set<net::LinkId>& seen_links);

    net::RouterId root_;
    std::vector<Node> nodes_;
    std::vector<net::RouterId> leaves_;
    std::vector<int> leaf_nodes_;  ///< node index per leaf slot
    std::vector<net::LinkId> links_;
    std::unordered_map<net::RouterId, int> node_of_;
};

/// The union-of-trees view: which links of F_H are covered when H combines
/// its own tree with some of its peers' trees (Figure 4).
class Forest {
  public:
    /// trees[0] is H's own tree; the rest belong to H's routing peers.
    explicit Forest(std::vector<const ProbeTree*> trees);

    [[nodiscard]] std::size_t tree_count() const noexcept {
        return trees_.size();
    }

    /// All distinct links in the forest.
    [[nodiscard]] const std::vector<net::LinkId>& links() const noexcept {
        return links_;
    }

    /// Fraction of forest links present in the union of the first
    /// `tree_count` trees.
    [[nodiscard]] double coverage(std::size_t tree_count) const;

    /// Number of the first `tree_count` trees containing each covered link,
    /// i.e. how many peers can vouch for it (Figure 4's second series).
    [[nodiscard]] double mean_vouchers(std::size_t tree_count) const;

  private:
    std::vector<const ProbeTree*> trees_;
    std::vector<net::LinkId> links_;
};

}  // namespace concilium::tomography
