// Feedback verification (Section 3.3).
//
// "A faulty or malicious leaf can try to respond to probes that were actually
// lost in the network, or drop acknowledgments for probes that were received.
// The former only affects inferences over the last mile to the misbehaving
// leaf, but the latter can ruin many inferences throughout the tree.
// Fortunately, we can detect both types of misbehavior."
//
// Fabricated acknowledgments are caught deterministically by the probe
// nonce: the nonce travels only inside the probe, so a leaf that never
// received it cannot echo it.  Suppressed acknowledgments are caught
// statistically: when sibling subtrees demonstrate that a probe reached the
// shared parent router, an honest leaf's conditional acknowledgment rate is
// bounded below by its last-mile quality; a leaf whose conditional rate
// collapses is either suppressing feedback or sits behind a dead last mile
// -- in both cases its feedback must be excluded from tree inference, which
// is exactly what ref [3]'s verification achieves.

#pragma once

#include <span>
#include <vector>

#include "tomography/probing.h"
#include "tomography/tree.h"

namespace concilium::tomography {

/// Leaves that acknowledged at least one probe with an invalid nonce.
/// This is hard evidence of fabrication.
std::vector<bool> detect_fabricators(std::size_t leaf_count,
                                     std::span<const ProbeRecord> probes);

struct SuppressionTestParams {
    /// Flag a leaf when its ack rate conditioned on sibling evidence falls
    /// below this (honest leaves achieve ~ last-mile pass rate, near 1).
    double min_conditional_ack_rate = 0.5;
    /// Require at least this many evidence probes before judging.
    int min_evidence = 10;
};

/// Leaves whose conditional acknowledgment rate (given that some leaf in a
/// sibling subtree acknowledged the same stripe, proving the stripe reached
/// the shared parent) is implausibly low.
std::vector<bool> detect_suppressors(const ProbeTree& tree,
                                     std::span<const ProbeRecord> probes,
                                     const SuppressionTestParams& params);

/// Convenience: probes with either defect masked out per leaf, so inference
/// can run on trustworthy feedback only.  Flagged leaves' acks are cleared
/// (treated as silent), matching the exclusion semantics of Section 3.3.
std::vector<ProbeRecord> exclude_leaves(std::span<const ProbeRecord> probes,
                                        const std::vector<bool>& excluded);

}  // namespace concilium::tomography
