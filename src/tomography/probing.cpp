#include "tomography/probing.h"

#include <stdexcept>
#include <unordered_map>

#include "util/metrics.h"

namespace concilium::tomography {

namespace {

const LeafBehavior kHonest{};

const LeafBehavior& behavior_of(std::span<const LeafBehavior> behaviors,
                                std::size_t leaf) {
    if (behaviors.empty()) return kHonest;
    return behaviors[leaf];
}

}  // namespace

ProbeRecord sample_striped_probe(const ProbeTree& tree,
                                 const PassProbabilityFn& pass_probability,
                                 util::SimTime t,
                                 std::span<const LeafBehavior> behaviors,
                                 util::Rng& rng) {
    if (!behaviors.empty() && behaviors.size() != tree.leaves().size()) {
        throw std::invalid_argument(
            "sample_striped_probe: behaviors must match leaf count");
    }
    // One Bernoulli draw per tree link models the stripe's multicast
    // emulation: packets issued back to back share interior fate.
    std::unordered_map<net::LinkId, bool> link_passed;
    link_passed.reserve(tree.links().size());
    for (const net::LinkId l : tree.links()) {
        link_passed.emplace(l, rng.bernoulli(pass_probability(l, t)));
    }

    const std::size_t n = tree.leaves().size();
    ProbeRecord record;
    record.received.assign(n, false);
    record.acked.assign(n, false);
    record.nonce_valid.assign(n, false);

    // Walk the tree once, propagating delivery.
    std::vector<bool> reached(tree.nodes().size(), false);
    reached[0] = true;
    std::vector<int> stack{0};
    while (!stack.empty()) {
        const int n_idx = stack.back();
        stack.pop_back();
        const auto& node = tree.nodes()[static_cast<std::size_t>(n_idx)];
        for (const int child : node.children) {
            const auto& cn = tree.nodes()[static_cast<std::size_t>(child)];
            if (reached[static_cast<std::size_t>(n_idx)] &&
                link_passed.at(cn.via)) {
                reached[static_cast<std::size_t>(child)] = true;
            }
            stack.push_back(child);
        }
        if (node.leaf_slot.has_value()) {
            const auto slot = static_cast<std::size_t>(*node.leaf_slot);
            record.received[slot] = reached[static_cast<std::size_t>(n_idx)];
        }
    }

    std::int64_t lost = 0;
    std::int64_t acks = 0;
    std::int64_t suppressed_acks = 0;
    std::int64_t fabricated_acks = 0;
    for (std::size_t leaf = 0; leaf < n; ++leaf) {
        const LeafBehavior& b = behavior_of(behaviors, leaf);
        if (record.received[leaf]) {
            const bool suppressed = rng.bernoulli(b.suppress_ack_probability);
            record.acked[leaf] = !suppressed;
            record.nonce_valid[leaf] = !suppressed;
            suppressed ? ++suppressed_acks : ++acks;
        } else {
            ++lost;
            if (b.fabricate_acks) {
                // The nonce travelled inside the lost probe; a fabricated ack
                // cannot echo it (Section 3.3).
                record.acked[leaf] = true;
                record.nonce_valid[leaf] = false;
                ++fabricated_acks;
            }
        }
    }

    {
        using util::metrics::Registry;
        static auto& stripes =
            Registry::global().counter("tomography.stripes_sampled");
        static auto& issued =
            Registry::global().counter("tomography.probes_issued");
        static auto& lost_c =
            Registry::global().counter("tomography.probes_lost");
        static auto& acks_c = Registry::global().counter("tomography.probe_acks");
        static auto& supp_c =
            Registry::global().counter("tomography.acks_suppressed");
        static auto& fab_c =
            Registry::global().counter("tomography.acks_fabricated");
        stripes.add(1);
        issued.add(static_cast<std::int64_t>(n));
        lost_c.add(lost);
        acks_c.add(acks);
        supp_c.add(suppressed_acks);
        fab_c.add(fabricated_acks);
    }
    return record;
}

HeavyweightResult run_heavyweight_session(
    const ProbeTree& tree, const PassProbabilityFn& pass_probability,
    util::SimTime t0, const HeavyweightParams& params,
    std::span<const LeafBehavior> behaviors, util::Rng& rng) {
    if (params.probe_count < 1) {
        throw std::invalid_argument(
            "run_heavyweight_session: probe_count must be positive");
    }
    static auto& sessions = util::metrics::Registry::global().counter(
        "tomography.heavyweight_sessions");
    sessions.add(1);
    HeavyweightResult result;
    result.started_at = t0;
    result.ack_counts.assign(tree.leaves().size(), 0);
    result.probes.reserve(static_cast<std::size_t>(params.probe_count));
    util::SimTime t = t0;
    for (int i = 0; i < params.probe_count; ++i, t += params.spacing) {
        ProbeRecord rec =
            sample_striped_probe(tree, pass_probability, t, behaviors, rng);
        for (std::size_t leaf = 0; leaf < rec.acked.size(); ++leaf) {
            if (rec.acked[leaf] && rec.nonce_valid[leaf]) {
                ++result.ack_counts[leaf];
            }
        }
        result.probes.push_back(std::move(rec));
    }
    result.finished_at = t;
    return result;
}

LightweightResult run_lightweight_probe(
    const ProbeTree& tree, const PassProbabilityFn& pass_probability,
    util::SimTime t, int retries, std::span<const LeafBehavior> behaviors,
    util::Rng& rng) {
    static auto& rounds = util::metrics::Registry::global().counter(
        "tomography.lightweight_rounds");
    rounds.add(1);
    LightweightResult result;
    result.first_stripe =
        sample_striped_probe(tree, pass_probability, t, behaviors, rng);
    // Only nonce-valid acknowledgments count (Section 3.3): a fabricated
    // ack cannot make a leaf look responsive.
    result.responsive.assign(tree.leaves().size(), false);
    for (std::size_t leaf = 0; leaf < result.responsive.size(); ++leaf) {
        result.responsive[leaf] = result.first_stripe.acked[leaf] &&
                                  result.first_stripe.nonce_valid[leaf];
    }
    // "it sends a few more probes to silent peers to determine if they are
    // truly offline or situated along a lossy IP link" (Section 3.2)
    for (int r = 0; r < retries; ++r) {
        bool any_silent = false;
        for (const bool ok : result.responsive) {
            if (!ok) {
                any_silent = true;
                break;
            }
        }
        if (!any_silent) break;
        const ProbeRecord again = sample_striped_probe(
            tree, pass_probability, t + (r + 1) * util::kSecond, behaviors,
            rng);
        for (std::size_t leaf = 0; leaf < result.responsive.size(); ++leaf) {
            if (again.acked[leaf] && again.nonce_valid[leaf]) {
                result.responsive[leaf] = true;
            }
        }
    }
    return result;
}

}  // namespace concilium::tomography
