#include "tomography/snapshot.h"

#include <algorithm>
#include <array>
#include <stdexcept>

namespace concilium::tomography {

LossBucket quantize_loss(double loss) {
    if (loss < 0.01) return LossBucket::kClean;
    if (loss < 0.05) return LossBucket::kLow;
    if (loss < 0.20) return LossBucket::kModerate;
    if (loss < 0.80) return LossBucket::kHigh;
    return LossBucket::kDown;
}

double bucket_loss(LossBucket bucket) {
    switch (bucket) {
        case LossBucket::kClean: return 0.0;
        case LossBucket::kLow: return 0.03;
        case LossBucket::kModerate: return 0.12;
        case LossBucket::kHigh: return 0.5;
        case LossBucket::kDown: return 1.0;
    }
    throw std::invalid_argument("bucket_loss: bad bucket");
}

std::vector<std::uint8_t> TomographicSnapshot::signed_payload() const {
    util::ByteWriter w;
    w.node_id(origin);
    w.u64(epoch);
    w.i64(probed_at);
    w.u32(static_cast<std::uint32_t>(paths.size()));
    for (const PathSummary& p : paths) {
        w.node_id(p.peer);
        w.u8(static_cast<std::uint8_t>(p.bucket));
    }
    w.u32(static_cast<std::uint32_t>(links.size()));
    for (const LinkObservation& l : links) {
        w.u32(l.link);
        w.u8(l.up ? 1 : 0);
    }
    return w.data();
}

std::size_t TomographicSnapshot::wire_bytes() const {
    // "Assuming 1 byte for each path summary" (Section 4.4).  Link verdicts
    // are derivable from the path summaries plus the advertised tree, so
    // they ride free; the envelope carries the origin, epoch, timestamp,
    // and signature.
    return paths.size() * 1 + util::NodeId::kBytes + 8 + 8 +
           crypto::Signature::kWireBytes;
}

void write_snapshot_wire(util::ByteWriter& w, const TomographicSnapshot& s) {
    w.node_id(s.origin);
    w.u64(s.epoch);
    w.i64(s.probed_at);
    w.u32(static_cast<std::uint32_t>(s.paths.size()));
    for (const auto& p : s.paths) {
        w.node_id(p.peer);
        w.u8(static_cast<std::uint8_t>(p.bucket));
    }
    w.u32(static_cast<std::uint32_t>(s.links.size()));
    for (const auto& l : s.links) {
        w.u32(l.link);
        w.u8(l.up ? 1 : 0);
    }
    w.bytes(s.signature.bytes());
}

TomographicSnapshot read_snapshot_wire(util::ByteReader& r) {
    TomographicSnapshot s;
    s.origin = r.node_id();
    s.epoch = r.u64();
    s.probed_at = r.i64();
    const std::uint32_t paths = r.u32();
    s.paths.reserve(paths);
    for (std::uint32_t i = 0; i < paths; ++i) {
        PathSummary p;
        p.peer = r.node_id();
        p.bucket = static_cast<LossBucket>(r.u8());
        s.paths.push_back(p);
    }
    const std::uint32_t links = r.u32();
    s.links.reserve(links);
    for (std::uint32_t i = 0; i < links; ++i) {
        LinkObservation l;
        l.link = r.u32();
        l.up = r.u8() != 0;
        s.links.push_back(l);
    }
    const auto raw = r.bytes();
    if (raw.size() != crypto::Signature::kBytes) {
        throw std::out_of_range("read_snapshot_wire: bad signature length");
    }
    std::array<std::uint8_t, crypto::Signature::kBytes> arr{};
    std::copy(raw.begin(), raw.end(), arr.begin());
    s.signature = crypto::Signature(arr);
    return s;
}

TomographicSnapshot make_snapshot(const util::NodeId& origin,
                                  const crypto::KeyPair& keys,
                                  util::SimTime probed_at,
                                  const ProbeTree& tree,
                                  const InferenceResult& inference,
                                  const SnapshotParams& params,
                                  const std::vector<util::NodeId>& leaf_ids) {
    if (leaf_ids.size() != tree.leaves().size()) {
        throw std::invalid_argument("make_snapshot: leaf id count mismatch");
    }
    TomographicSnapshot snap;
    snap.origin = origin;
    snap.probed_at = probed_at;
    for (std::size_t slot = 0; slot < leaf_ids.size(); ++slot) {
        double pass = 1.0;
        const auto node = tree.node_of(tree.leaves()[slot]);
        if (node.has_value()) {
            pass = inference.cumulative_pass.at(
                static_cast<std::size_t>(*node));
        }
        snap.paths.push_back(
            PathSummary{leaf_ids[slot], quantize_loss(1.0 - pass)});
    }
    for (const LinkLossEstimate& e : inference.links) {
        // Links with no probe evidence (below a dead ancestor) are omitted:
        // a snapshot only vouches for what its probes actually tested.
        if (!e.observable) continue;
        snap.links.push_back(
            LinkObservation{e.link, e.loss < params.down_loss_threshold});
    }
    snap.signature = keys.sign(snap.signed_payload());
    return snap;
}

bool verify_snapshot(const TomographicSnapshot& snapshot,
                     const crypto::PublicKey& origin_key,
                     const crypto::KeyRegistry& registry) {
    return registry.verify(origin_key, snapshot.signed_payload(),
                           snapshot.signature);
}

}  // namespace concilium::tomography
