#include "tomography/tree.h"

#include <algorithm>
#include <stdexcept>

namespace concilium::tomography {

ProbeTree::ProbeTree(net::RouterId root, std::span<const net::Path> paths)
    : root_(root) {
    Node root_node;
    root_node.router = root;
    nodes_.push_back(root_node);
    node_of_[root] = 0;

    std::unordered_set<net::LinkId> seen_links;
    for (const net::Path& path : paths) {
        insert_path(path.routers, path.links, seen_links);
    }
}

ProbeTree::ProbeTree(net::RouterId root, std::span<const net::PathView> paths)
    : root_(root) {
    Node root_node;
    root_node.router = root;
    nodes_.push_back(root_node);
    node_of_[root] = 0;

    std::unordered_set<net::LinkId> seen_links;
    for (const net::PathView& path : paths) {
        insert_path(path.routers, path.links, seen_links);
    }
}

void ProbeTree::insert_path(std::span<const net::RouterId> routers,
                            std::span<const net::LinkId> links,
                            std::unordered_set<net::LinkId>& seen_links) {
    if (links.empty()) return;
    if (routers.front() != root_) {
        throw std::invalid_argument("ProbeTree: path does not start at root");
    }
    int cur = 0;
    for (std::size_t hop = 0; hop < links.size(); ++hop) {
        const net::RouterId router = routers[hop + 1];
        const net::LinkId link = links[hop];
        const auto it = node_of_.find(router);
        if (it != node_of_.end()) {
            if (nodes_[static_cast<std::size_t>(it->second)].via != link) {
                throw std::invalid_argument(
                    "ProbeTree: paths disagree on a router's parent");
            }
            cur = it->second;
        } else {
            Node node;
            node.router = router;
            node.via = link;
            node.parent = cur;
            const int idx = static_cast<int>(nodes_.size());
            nodes_[static_cast<std::size_t>(cur)].children.push_back(idx);
            nodes_.push_back(node);
            node_of_[router] = idx;
            cur = idx;
        }
        if (seen_links.insert(link).second) links_.push_back(link);
    }
    // Terminal router of this path is a probed leaf endpoint.
    Node& endpoint = nodes_[static_cast<std::size_t>(cur)];
    if (!endpoint.leaf_slot.has_value()) {
        endpoint.leaf_slot = static_cast<int>(leaves_.size());
        leaves_.push_back(endpoint.router);
        leaf_nodes_.push_back(cur);
    }
}

std::optional<int> ProbeTree::node_of(net::RouterId router) const {
    const auto it = node_of_.find(router);
    if (it == node_of_.end()) return std::nullopt;
    return it->second;
}

std::vector<net::LinkId> ProbeTree::path_links(int leaf_slot) const {
    if (leaf_slot < 0 ||
        leaf_slot >= static_cast<int>(leaf_nodes_.size())) {
        throw std::out_of_range("ProbeTree::path_links: bad leaf slot");
    }
    std::vector<net::LinkId> out;
    for (int n = leaf_nodes_[static_cast<std::size_t>(leaf_slot)]; n != 0;
         n = nodes_[static_cast<std::size_t>(n)].parent) {
        out.push_back(nodes_[static_cast<std::size_t>(n)].via);
    }
    std::reverse(out.begin(), out.end());
    return out;
}

std::vector<int> ProbeTree::leaf_slots_under(int node) const {
    if (node < 0 || node >= static_cast<int>(nodes_.size())) {
        throw std::out_of_range("ProbeTree::leaf_slots_under: bad node");
    }
    std::vector<int> out;
    std::vector<int> stack{node};
    while (!stack.empty()) {
        const int n = stack.back();
        stack.pop_back();
        const Node& nd = nodes_[static_cast<std::size_t>(n)];
        if (nd.leaf_slot.has_value()) out.push_back(*nd.leaf_slot);
        stack.insert(stack.end(), nd.children.begin(), nd.children.end());
    }
    std::sort(out.begin(), out.end());
    return out;
}

Forest::Forest(std::vector<const ProbeTree*> trees) : trees_(std::move(trees)) {
    if (trees_.empty()) {
        throw std::invalid_argument("Forest: no trees");
    }
    std::unordered_set<net::LinkId> seen;
    for (const ProbeTree* t : trees_) {
        for (const net::LinkId l : t->links()) {
            if (seen.insert(l).second) links_.push_back(l);
        }
    }
}

double Forest::coverage(std::size_t tree_count) const {
    tree_count = std::min(tree_count, trees_.size());
    std::unordered_set<net::LinkId> covered;
    for (std::size_t i = 0; i < tree_count; ++i) {
        covered.insert(trees_[i]->links().begin(), trees_[i]->links().end());
    }
    return links_.empty() ? 0.0
                          : static_cast<double>(covered.size()) /
                                static_cast<double>(links_.size());
}

double Forest::mean_vouchers(std::size_t tree_count) const {
    tree_count = std::min(tree_count, trees_.size());
    std::unordered_map<net::LinkId, int> vouchers;
    for (std::size_t i = 0; i < tree_count; ++i) {
        for (const net::LinkId l : trees_[i]->links()) ++vouchers[l];
    }
    if (vouchers.empty()) return 0.0;
    double sum = 0.0;
    for (const auto& [link, n] : vouchers) sum += n;
    return sum / static_cast<double>(vouchers.size());
}

}  // namespace concilium::tomography
