// Maximum-likelihood link-loss inference (MINC-style).
//
// "Loss rates for each root-leaf path are inferred using the number of
// acknowledgments received from each leaf host.  Using maximum likelihood
// estimators, these end-to-end loss rates induce loss rates for each internal
// IP link." (Section 3.2, after Duffield et al.)
//
// Striped probes emulate multicast, so the classic multicast estimator
// applies: let gamma_k be the probability that at least one leaf below tree
// node k acknowledges a probe, and A_k the probability that the probe reaches
// node k.  At every branch point the MLE solves
//
//     1 - gamma_k / A_k  =  prod_children (1 - gamma_child / A_k)
//
// for A_k; per-link pass rates are then ratios of consecutive A values.
// Chains of single-child interior routers are not individually identifiable
// from one vantage point (only the chain's aggregate loss is); estimates for
// such links carry the chain loss and length, and Concilium recovers
// per-link resolution by combining snapshots from peers whose trees branch
// elsewhere (Section 4.2's vouching argument).

#pragma once

#include <span>
#include <vector>

#include "net/topology.h"
#include "tomography/probing.h"
#include "tomography/tree.h"

namespace concilium::tomography {

struct LinkLossEstimate {
    net::LinkId link = net::kInvalidLink;
    /// Aggregate loss of the identifiability unit (chain) containing this
    /// link, in [0, 1].
    double loss = 0.0;
    /// Number of physical links in that unit; 1 means fully identified.
    int chain_length = 1;
    /// False when no probe evidence reaches this unit at all -- every link
    /// below a dead ancestor is unobservable, and reporting it (up or down)
    /// would be fabrication.  Snapshots omit unobservable links.
    bool observable = true;
};

struct InferenceResult {
    /// Estimated cumulative pass probability root -> node, per physical tree
    /// node index (1.0 at the root).
    std::vector<double> cumulative_pass;
    /// One estimate per physical tree link.
    std::vector<LinkLossEstimate> links;

    [[nodiscard]] double loss_of(net::LinkId link) const;
};

/// Runs the estimator over a probe session.  Probes whose acks carry invalid
/// nonces are treated as losses (the fabricated-ack defence, Section 3.3).
InferenceResult infer_link_loss(const ProbeTree& tree,
                                std::span<const ProbeRecord> probes);

}  // namespace concilium::tomography
