// Signed tomographic snapshots.
//
// "After H has probed T_H ... it sends a timestamped snapshot of T_H and its
// summarized probe results to its routing peers.  The probe results for each
// path can be encoded in a few bits representing predefined loss rates.  H
// signs the tomographic snapshot with its public key, both to prevent
// spoofing attacks and to prevent H from disavowing previously advertised
// probe results." (Section 3.2)

#pragma once

#include <cstdint>
#include <vector>

#include "crypto/keys.h"
#include "net/topology.h"
#include "tomography/inference.h"
#include "tomography/tree.h"
#include "util/ids.h"
#include "util/serialize.h"
#include "util/time.h"

namespace concilium::tomography {

/// Predefined loss-rate buckets; a path summary costs one byte on the wire.
enum class LossBucket : std::uint8_t {
    kClean = 0,     ///< < 1% loss
    kLow = 1,       ///< 1% - 5%
    kModerate = 2,  ///< 5% - 20%
    kHigh = 3,      ///< 20% - 80%
    kDown = 4,      ///< >= 80%: effectively unusable
};

LossBucket quantize_loss(double loss);
/// Representative (midpoint) loss rate for a bucket.
double bucket_loss(LossBucket bucket);

/// One probed link's up/down verdict: the p.l_up of Equation 3.
struct LinkObservation {
    net::LinkId link = net::kInvalidLink;
    bool up = true;
};

/// Per-routing-peer end-to-end summary (the few-bits encoding).
struct PathSummary {
    util::NodeId peer;
    LossBucket bucket = LossBucket::kClean;
};

struct TomographicSnapshot {
    util::NodeId origin;
    /// Per-origin publication counter, covered by the signature.  Every
    /// published snapshot carries a strictly increasing epoch, so a replayed
    /// snapshot is recognizable (its epoch regressed) and two *different*
    /// snapshots signed for the same (origin, epoch) are a self-verifying
    /// equivocation proof.  0 = unversioned (hand-built test snapshots).
    std::uint64_t epoch = 0;
    util::SimTime probed_at = 0;
    std::vector<PathSummary> paths;
    std::vector<LinkObservation> links;
    crypto::Signature signature;

    [[nodiscard]] std::vector<std::uint8_t> signed_payload() const;

    /// Section 4.4 accounting: one byte per path summary on top of the
    /// routing-state advertisement it rides with.
    [[nodiscard]] std::size_t wire_bytes() const;
};

/// Wire form of a snapshot including its signature (shared by accusation
/// bundles and equivocation proofs).
void write_snapshot_wire(util::ByteWriter& w, const TomographicSnapshot& s);
TomographicSnapshot read_snapshot_wire(util::ByteReader& r);

struct SnapshotParams {
    /// A link (chain) whose inferred loss reaches this level is reported
    /// down.
    double down_loss_threshold = 0.5;
};

/// Summarizes an inference result into a signed snapshot.
TomographicSnapshot make_snapshot(const util::NodeId& origin,
                                  const crypto::KeyPair& keys,
                                  util::SimTime probed_at,
                                  const ProbeTree& tree,
                                  const InferenceResult& inference,
                                  const SnapshotParams& params,
                                  const std::vector<util::NodeId>& leaf_ids);

/// Checks the origin's signature.
bool verify_snapshot(const TomographicSnapshot& snapshot,
                     const crypto::PublicKey& origin_key,
                     const crypto::KeyRegistry& registry);

}  // namespace concilium::tomography
