#include "tomography/overlay_trees.h"

#include <stdexcept>

namespace concilium::tomography {

OverlayTrees::OverlayTrees(const overlay::OverlayNetwork& net,
                           const net::Topology& topology) {
    const net::PathOracle oracle(topology);
    const std::size_t n = net.size();
    trees_.reserve(n);
    leaf_slots_.resize(n);
    leaf_ids_.resize(n);
    leaf_members_.resize(n);
    for (overlay::MemberIndex m = 0; m < n; ++m) {
        const auto& peers = net.routing_peers(m);
        std::vector<net::RouterId> dsts;
        dsts.reserve(peers.size());
        for (const overlay::MemberIndex p : peers) {
            dsts.push_back(net.member(p).ip());
        }
        std::vector<net::Path> paths = oracle.paths_from(net.member(m).ip(), dsts);
        trees_.emplace_back(net.member(m).ip(), paths);
        int slot = 0;
        for (std::size_t i = 0; i < peers.size(); ++i) {
            if (paths[i].empty()) continue;
            leaf_slots_[m].emplace(peers[i], slot++);
            leaf_ids_[m].push_back(net.member(peers[i]).id());
            leaf_members_[m].push_back(peers[i]);
            member_peer_paths_.push_back(std::move(paths[i]));
        }
    }
}

std::optional<int> OverlayTrees::leaf_slot(overlay::MemberIndex m,
                                           overlay::MemberIndex peer) const {
    const auto& slots = leaf_slots_.at(m);
    const auto it = slots.find(peer);
    if (it == slots.end()) return std::nullopt;
    return it->second;
}

std::vector<net::LinkId> OverlayTrees::path_links(
    overlay::MemberIndex m, overlay::MemberIndex peer) const {
    const auto slot = leaf_slot(m, peer);
    if (!slot.has_value()) {
        throw std::invalid_argument("OverlayTrees::path_links: no path");
    }
    return trees_.at(m).path_links(*slot);
}

}  // namespace concilium::tomography
