#include "tomography/overlay_trees.h"

#include <algorithm>
#include <stdexcept>

namespace concilium::tomography {

OverlayTrees::OverlayTrees(const overlay::OverlayNetwork& net,
                           const net::Topology& topology) {
    const net::PathOracle oracle(topology);
    const std::size_t n = net.size();
    trees_.reserve(n);
    leaf_slots_.resize(n);
    leaf_paths_.resize(n);
    leaf_ids_.resize(n);
    leaf_members_.resize(n);
    for (overlay::MemberIndex m = 0; m < n; ++m) {
        const auto& peers = net.routing_peers(m);
        std::vector<net::RouterId> dsts;
        dsts.reserve(peers.size());
        for (const overlay::MemberIndex p : peers) {
            dsts.push_back(net.member(p).ip());
        }
        const std::vector<net::PathView> paths =
            oracle.paths_into(net.member(m).ip(), dsts, arena_);
        trees_.emplace_back(net.member(m).ip(), paths);
        int slot = 0;
        for (std::size_t i = 0; i < peers.size(); ++i) {
            if (paths[i].empty()) continue;
            leaf_slots_[m].emplace_back(peers[i], slot++);
            leaf_paths_[m].push_back(paths[i].links);
            leaf_ids_[m].push_back(net.member(peers[i]).id());
            leaf_members_[m].push_back(peers[i]);
            member_peer_paths_.push_back(paths[i].to_path());
        }
        std::sort(leaf_slots_[m].begin(), leaf_slots_[m].end());
    }
}

std::optional<int> OverlayTrees::leaf_slot(overlay::MemberIndex m,
                                           overlay::MemberIndex peer) const {
    const auto& slots = leaf_slots_.at(m);
    const auto it = std::lower_bound(
        slots.begin(), slots.end(), peer,
        [](const auto& entry, overlay::MemberIndex p) {
            return entry.first < p;
        });
    if (it == slots.end() || it->first != peer) return std::nullopt;
    return it->second;
}

std::span<const net::LinkId> OverlayTrees::path_links(
    overlay::MemberIndex m, overlay::MemberIndex peer) const {
    const auto slot = leaf_slot(m, peer);
    if (!slot.has_value()) {
        throw std::invalid_argument("OverlayTrees::path_links: no path");
    }
    return leaf_paths_.at(m)[static_cast<std::size_t>(*slot)];
}

}  // namespace concilium::tomography
