#include "tomography/inference.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/metrics.h"
#include "util/spans.h"

namespace concilium::tomography {

namespace {

constexpr double kEps = 1e-9;

util::metrics::Counter& solver_iterations() {
    static auto& c =
        util::metrics::Registry::global().counter("tomography.solver_iterations");
    return c;
}

/// Solves (1 - gamma_k / A) = prod_j (1 - gamma_j / A) for A in (lo, 1].
/// Returns 1.0 when the data show no shared loss above the branch point.
double solve_branch(double gamma_self, const std::vector<double>& gamma_children) {
    static auto& calls =
        util::metrics::Registry::global().counter("tomography.solver_calls");
    calls.add(1);
    double lo = gamma_self;
    for (const double g : gamma_children) lo = std::max(lo, g);
    lo = std::max(lo, kEps);
    if (lo >= 1.0) return 1.0;

    const auto g_fn = [&](double a) {
        double prod = 1.0;
        for (const double g : gamma_children) prod *= (1.0 - g / a);
        return (1.0 - gamma_self / a) - prod;
    };
    // g(lo+) <= 0 (first term vanishes at gamma_self, or a child factor
    // vanishes); if g(1) < 0 there is no interior root -> no inferable
    // shared loss.
    if (g_fn(1.0) < 0.0) return 1.0;
    double a = lo + kEps;
    double b = 1.0;
    if (g_fn(a) > 0.0) return a;  // degenerate sample; clamp
    for (int iter = 0; iter < 80; ++iter) {
        const double mid = 0.5 * (a + b);
        if (g_fn(mid) <= 0.0) {
            a = mid;
        } else {
            b = mid;
        }
    }
    solver_iterations().add(80);
    return 0.5 * (a + b);
}

}  // namespace

double InferenceResult::loss_of(net::LinkId link) const {
    for (const LinkLossEstimate& e : links) {
        if (e.link == link) return e.loss;
    }
    throw std::out_of_range("InferenceResult::loss_of: unknown link");
}

InferenceResult infer_link_loss(const ProbeTree& tree,
                                std::span<const ProbeRecord> probes) {
    if (probes.empty()) {
        throw std::invalid_argument("infer_link_loss: no probes");
    }
    static auto& runs =
        util::metrics::Registry::global().counter("tomography.inference_runs");
    runs.add(1);
    // Wall-clock MLE-solve span (the tomography compute hot spot); callers
    // with a sim clock add their own sim-side context.
    const util::spans::WallSpan span(
        util::spans::SpanType::kMleSolve, /*causal=*/0,
        static_cast<std::int64_t>(probes.size()));
    const auto& nodes = tree.nodes();
    const std::size_t n = nodes.size();

    // gamma_hat[k]: fraction of probes with a (nonce-valid) ack from some
    // leaf in k's subtree.  One bottom-up pass per probe.
    std::vector<int> ack_any(n, 0);
    // Children are always appended after their parent, so iterating node
    // indices in reverse is a valid post-order for accumulation.
    std::vector<char> probe_hit(n, 0);
    for (const ProbeRecord& rec : probes) {
        std::fill(probe_hit.begin(), probe_hit.end(), 0);
        for (std::size_t k = n; k-- > 0;) {
            const auto& node = nodes[k];
            bool hit = false;
            if (node.leaf_slot.has_value()) {
                const auto slot = static_cast<std::size_t>(*node.leaf_slot);
                hit = rec.acked[slot] && rec.nonce_valid[slot];
            }
            for (const int c : node.children) {
                hit = hit || probe_hit[static_cast<std::size_t>(c)];
            }
            probe_hit[k] = hit ? 1 : 0;
            if (hit) ++ack_any[k];
        }
    }
    std::vector<double> gamma(n);
    for (std::size_t k = 0; k < n; ++k) {
        gamma[k] = static_cast<double>(ack_any[k]) /
                   static_cast<double>(probes.size());
    }

    // Logical skeleton: the root, branch points (>= 2 children), and probed
    // endpoints are identifiable; single-child pass-through routers collapse
    // into the link chain below their nearest identifiable ancestor.
    const auto is_logical = [&](std::size_t k) {
        return k == 0 || nodes[k].children.size() >= 2 ||
               nodes[k].leaf_slot.has_value();
    };

    InferenceResult result;
    result.cumulative_pass.assign(n, 1.0);

    // Process logical nodes top-down (index order is parent-before-child).
    for (std::size_t k = 1; k < n; ++k) {
        if (!is_logical(k)) continue;
        // Find the nearest identifiable ancestor and count the chain links.
        std::size_t anc = static_cast<std::size_t>(nodes[k].parent);
        int chain_len = 1;
        while (!is_logical(anc)) {
            anc = static_cast<std::size_t>(nodes[anc].parent);
            ++chain_len;
        }
        const double a_parent = result.cumulative_pass[anc];
        // When no probe ever reached the parent (its whole subtree is
        // silent), deeper links carry no evidence whatsoever.
        const bool parent_reachable = a_parent > 2.0 * kEps;

        double a_k;
        if (gamma[k] <= 0.0) {
            // No ack from this subtree: if probes did reach the parent, the
            // chain itself is demonstrably dead; otherwise it is merely
            // unobservable.
            a_k = kEps;
        } else if (nodes[k].children.empty()) {
            a_k = gamma[k];  // logical leaf: gamma IS the end-to-end pass rate
        } else {
            std::vector<double> child_gammas;
            for (const int c : nodes[k].children) {
                child_gammas.push_back(gamma[static_cast<std::size_t>(c)]);
            }
            if (nodes[k].leaf_slot.has_value()) {
                // A probed interior endpoint: its own acks behave like a
                // zero-loss virtual child.
                const auto slot = *nodes[k].leaf_slot;
                double own = 0.0;
                for (const ProbeRecord& rec : probes) {
                    const auto s = static_cast<std::size_t>(slot);
                    if (rec.acked[s] && rec.nonce_valid[s]) own += 1.0;
                }
                child_gammas.push_back(own /
                                       static_cast<double>(probes.size()));
            }
            a_k = child_gammas.size() >= 2
                      ? solve_branch(gamma[k], child_gammas)
                      : gamma[k];  // cannot happen for a true branch point
        }
        a_k = std::clamp(a_k, kEps, 1.0);
        const bool observable = parent_reachable;
        const double chain_pass =
            observable ? std::clamp(a_k / a_parent, 0.0, 1.0) : 1.0;
        const double chain_loss = observable ? 1.0 - chain_pass : 0.0;
        if (observable) {
            static auto& loss_hist = util::metrics::Registry::global().histogram(
                "tomography.link_loss_estimate", 0.0, 1.0, 20);
            loss_hist.observe(chain_loss);
        }

        // Record the estimate on every physical link of the chain, and give
        // intermediate chain nodes interpolated cumulative passes.
        result.cumulative_pass[k] = a_k;
        const double per_hop = std::pow(
            std::max(chain_pass, kEps), 1.0 / static_cast<double>(chain_len));
        std::size_t walk = k;
        double cum = a_k;
        for (int hop = 0; hop < chain_len; ++hop) {
            result.links.push_back(LinkLossEstimate{
                nodes[walk].via, chain_loss, chain_len, observable});
            const auto parent = static_cast<std::size_t>(nodes[walk].parent);
            if (hop + 1 < chain_len) {
                cum /= per_hop;
                result.cumulative_pass[parent] = std::min(cum, 1.0);
            }
            walk = parent;
        }
    }
    return result;
}

}  // namespace concilium::tomography
