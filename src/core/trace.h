// Diagnosis tracing: the "explain this accusation" journal.
//
// Concilium's output is a verdict — "hop 2 dropped your message" — but the
// paper's protocol derives it from a pile of intermediate state: the
// forwarder chain, each steward's tomographic snapshots, the per-link
// bad-confidence terms of Equations 2-3, and the revision chain that walks
// blame downstream.  DiagnosisTrace is an opt-in ring buffer that captures
// all of it per diagnosed message, so a surprising verdict can be audited
// instead of re-simulated.  Attach one to a runtime::Cluster with
// set_trace(); dump with to_json() (the `concilium trace` subcommand).
//
// The journal holds the last `capacity` records; older diagnoses are
// evicted FIFO.  All methods are thread-safe (a single mutex — tracing is
// an offline debugging tool, not a hot path).

#pragma once

#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "core/blame.h"
#include "util/ids.h"
#include "util/time.h"

namespace concilium::core {

/// One steward's verdict about its next hop, with the fuzzy blame inputs
/// (Equation 2's per-link confidences, Equation 3's aggregate) preserved.
struct TraceJudgment {
    util::NodeId judge;
    util::NodeId suspect;
    util::SimTime judged_at = 0;
    /// IP links of the judged segment, in path order.
    std::vector<net::LinkId> path_links;
    /// Equations 2-3 terms: per-link bad confidences, the fuzzy-OR
    /// aggregate, and the resulting blame.
    BlameBreakdown breakdown;
    bool guilty = false;
    /// True when this verdict reached the sender as an upstream revision
    /// (Section 3.5) rather than being the sender's own judgment.
    bool revision = false;
};

/// Everything the protocol knew when it closed the book on one message.
struct DiagnosisRecord {
    enum class Verdict {
        kUnjudged,       ///< no verifiable judgment was ever produced
        kNetworkBlamed,  ///< tomography exonerated every forwarder
        kNodeBlamed,     ///< the revision chain settled on `blamed`
        /// Degraded mode (RECOVERY.md): the evidence window was hollowed
        /// out by a crash or partition, so blame abstains rather than
        /// convicting on a presumption.
        kInsufficientEvidence,
    };

    std::uint64_t message_id = 0;
    util::SimTime sent_at = 0;
    util::SimTime completed_at = 0;
    /// The route's member ids, sender first.
    std::vector<util::NodeId> forwarder_chain;
    /// Judgments in hop order: index 0 is the sender's own verdict, the
    /// rest arrived as revisions.
    std::vector<TraceJudgment> judgments;
    Verdict verdict = Verdict::kUnjudged;
    std::optional<util::NodeId> blamed;

    /// Compact single-object JSON (no trailing newline).
    [[nodiscard]] std::string to_json() const;
};

[[nodiscard]] const char* to_string(DiagnosisRecord::Verdict verdict);

class DiagnosisTrace {
  public:
    explicit DiagnosisTrace(std::size_t capacity = 256);

    void record(DiagnosisRecord rec);

    [[nodiscard]] std::size_t size() const;
    [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
    /// Records ever seen, including ones the ring has since evicted.
    [[nodiscard]] std::uint64_t total_recorded() const;
    /// Copy of the retained records, oldest first.
    [[nodiscard]] std::vector<DiagnosisRecord> records() const;

    /// The retained records as a JSON array, one record per line.
    [[nodiscard]] std::string records_json() const;
    /// `{"total_recorded": N, "records": [...]}` (ends with a newline).
    [[nodiscard]] std::string to_json() const;

    void clear();

  private:
    mutable std::mutex mutex_;
    std::size_t capacity_;
    std::uint64_t total_ = 0;
    std::deque<DiagnosisRecord> ring_;
};

}  // namespace concilium::core
