// The blame engine: Equations 2 and 3 (Section 3.4).
//
// When A's message through forwarder B (next hop C) is never acknowledged, A
// consults the probe results covering the links of the IP path B -> C that
// were initiated within [t - Delta, t + Delta].  Each probe votes on its
// link's status, weighted by the probe accuracy a:
//
//     vote(p) = p.l_up * (1 - a) + (1 - p.l_up) * a
//
// i.e. a down-probe is evidence the link was bad with confidence a, an
// up-probe with confidence 1-a.  Per-link confidences are averaged over the
// probes of that link, and the *fuzzy-logic OR* (max) over links gives
// Pr(B -> C bad); blame on B is its complement:
//
//     Pr(B faulty) = 1 - max_l  mean_{p in probes(l)} vote(p)      (Eq. 2-3)
//
// Crucially, the judged node's own probe results are excluded, "since a
// malicious B could reduce its level of blame by claiming that it probed a
// link in B -> C as down."

#pragma once

#include <span>
#include <vector>

#include "net/topology.h"
#include "util/ids.h"
#include "util/time.h"

namespace concilium::core {

/// One reporter's probe of one link, as extracted from a signed tomographic
/// snapshot (tomography::LinkObservation plus provenance).
struct ProbeResult {
    util::NodeId reporter;
    net::LinkId link = net::kInvalidLink;
    bool link_up = true;  ///< p.l_up
    util::SimTime at = 0;
};

struct BlameParams {
    double probe_accuracy = 0.9;                ///< a (Section 4.3)
    util::SimTime delta = 60 * util::kSecond;   ///< probe admission window
    /// Fuzzy OR operator.  The paper uses kMax; kMean is this repo's
    /// ablation alternative (probabilistic-sum-style averaging).
    enum class OrOperator { kMax, kMean } or_operator = OrOperator::kMax;
};

/// Per-link aggregation detail, archived with accusations so that third
/// parties can re-derive the verdict.
struct LinkConfidence {
    net::LinkId link = net::kInvalidLink;
    double bad_confidence = 0.0;  ///< mean vote over admitted probes
    int probes_used = 0;
};

struct BlameBreakdown {
    double path_bad_confidence = 0.0;  ///< Pr(B->C has >= 1 bad link)
    double blame = 1.0;                ///< Pr(B faulty) = 1 - the above
    std::vector<LinkConfidence> links; ///< only links with >= 1 admitted probe
};

/// Evaluates Equations 2-3 for a message sent at `message_time` along the
/// path `path_links` through judged forwarder `judged`.  Probes reported by
/// `judged` and probes outside [message_time - delta, message_time + delta]
/// are discarded.  With no admissible probe on any path link, the path is
/// presumed good and blame is 1 ("Otherwise, Concilium determines that B was
/// faulty").
BlameBreakdown compute_blame(std::span<const net::LinkId> path_links,
                             std::span<const ProbeResult> probes,
                             util::SimTime message_time,
                             const util::NodeId& judged,
                             const BlameParams& params);

/// Single probe's vote that its link was bad (the bracketed term of Eq. 3).
double probe_vote(bool link_up, double probe_accuracy);

}  // namespace concilium::core
