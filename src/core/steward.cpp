#include "core/steward.h"

#include <stdexcept>

#include "util/metrics.h"

namespace concilium::core {

namespace {

void record_attribution(bool network_blamed) {
    using util::metrics::Registry;
    static auto& attributions = Registry::global().counter("core.attributions");
    static auto& node_blamed =
        Registry::global().counter("core.attribution_node_blamed");
    static auto& net_blamed =
        Registry::global().counter("core.attribution_network_blamed");
    attributions.add(1);
    network_blamed ? net_blamed.add(1) : node_blamed.add(1);
}

}  // namespace

AttributionOutcome attribute_fault(
    std::size_t route_length, std::size_t forwarder_count,
    const std::function<double(std::size_t judge, std::size_t suspect)>&
        blame_fn,
    const VerdictParams& params) {
    if (route_length < 2) {
        throw std::invalid_argument("attribute_fault: route too short");
    }
    if (forwarder_count >= route_length) {
        throw std::invalid_argument(
            "attribute_fault: forwarder count beyond route end");
    }

    AttributionOutcome out;
    // Each steward that forwarded the message judges its next hop.
    for (std::size_t j = 0; j < forwarder_count; ++j) {
        HopJudgment judgment;
        judgment.judge_hop = j;
        judgment.suspect_hop = j + 1;
        judgment.blame = blame_fn(j, j + 1);
        judgment.guilty = is_guilty_verdict(judgment.blame, params);
        out.judgments.push_back(judgment);
    }

    if (out.judgments.empty()) {
        // The sender itself dropped or never sent; nothing to attribute.
        out.network_blamed = false;
        out.blamed_hop = forwarder_count;
        record_attribution(out.network_blamed);
        return out;
    }

    // Walk the chain of guilty verdicts downstream from the sender.  A
    // not-guilty verdict means that judge's tomographic evidence showed a
    // bad IP link to its next hop; its upstream accuser accepts that
    // rebuttal and the network takes the blame.
    for (const HopJudgment& j : out.judgments) {
        if (!j.guilty) {
            out.network_blamed = true;
            out.faulted_segment = j.judge_hop;
            record_attribution(out.network_blamed);
            return out;
        }
    }
    // Every steward pushed guilt one hop further; it sticks at the first
    // node that issued no (verifiable) judgment -- the apparent drop point.
    out.blamed_hop = forwarder_count;
    record_attribution(out.network_blamed);
    return out;
}

}  // namespace concilium::core
