// Recursive stewardship and fault attribution (Section 3.5).
//
// "Whenever a peer along A -> Z forwards a message, it treats the message as
// if it were generated locally -- in other words, each forwarding peer
// expects to receive an acknowledgment from Z. ... When this acknowledgment
// does not arrive, A will blame B, B will blame C, and C will blame D.  D
// will not be able to blame a forwarding peer since it lacks incriminating
// tomographic data ... Thus, the accusation chain stops at D and nodes
// absolve themselves of unfair blame by pushing locally generated verdicts
// upstream."
//
// attribute_fault() is the pure chain-resolution logic: given each
// steward's blame value against its next hop, it walks the chain of guilty
// verdicts downstream from the sender and decides where blame finally lands
// -- on a forwarder, or on the network between two forwarders.

#pragma once

#include <functional>
#include <optional>
#include <vector>

#include "core/verdicts.h"

namespace concilium::core {

/// One steward's judgment of its next hop.
struct HopJudgment {
    std::size_t judge_hop = 0;    ///< position of the judge in the route
    std::size_t suspect_hop = 0;  ///< judge_hop + 1
    double blame = 0.0;
    bool guilty = false;
};

struct AttributionOutcome {
    /// Blame landed on the IP network rather than on a node.
    bool network_blamed = false;
    /// When a node is blamed: its route position.
    std::optional<std::size_t> blamed_hop;
    /// When the network is blamed: the route segment (judge, judge+1) whose
    /// tomographic evidence showed a bad link.
    std::optional<std::size_t> faulted_segment;
    /// All judgments issued, in route order, starting with the sender's.
    std::vector<HopJudgment> judgments;
};

/// Resolves blame along a route of `route_length` overlay nodes (sender at
/// position 0, destination at route_length - 1).
///
/// * `forwarder_count`: how many route positions actually forwarded the
///   message; positions 0..forwarder_count-1 are the stewards that await an
///   acknowledgment and judge their next hop.  If forwarder f dropped the
///   message, positions 0..f-1 forwarded it, so forwarder_count == f.  If
///   the IP network ate the message on segment s -> s+1, position s still
///   forwarded it (the packet died in transit), so forwarder_count == s+1
///   and the judge adjacent to the failure gets to testify.
/// * `blame_fn(judge, suspect)`: Equations 2-3 evaluated by `judge` against
///   `suspect` == judge + 1, using only evidence available to the judge.
///
/// Position forwarder_count never forwarded and holds no forwarding
/// commitment from its successor, so a chain of guilty verdicts that runs
/// through every judge sticks to it.
AttributionOutcome attribute_fault(
    std::size_t route_length, std::size_t forwarder_count,
    const std::function<double(std::size_t judge, std::size_t suspect)>&
        blame_fn,
    const VerdictParams& params);

}  // namespace concilium::core
