// Self-verifying equivocation proofs.
//
// A snapshot's signature covers its (origin, epoch) pair, and an honest
// origin publishes exactly one snapshot per epoch.  Two snapshots that carry
// the same origin and epoch but different payloads therefore prove -- to any
// third party holding the origin's public key -- that the origin signed
// contradictory probe results for different peers in the same probing round
// (Section 3.2's non-repudiation turned against the equivocator).  Like a
// fault accusation, the proof is stored in the replicated DHT under a key
// derived from the equivocator's public key, where prospective peers can
// fetch and re-check it.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "crypto/keys.h"
#include "tomography/snapshot.h"
#include "util/ids.h"
#include "util/serialize.h"

namespace concilium::core {

struct EquivocationProof {
    /// Two conflicting snapshots: same origin, same epoch, different signed
    /// payloads, both signatures valid under the origin's key.
    tomography::TomographicSnapshot first;
    tomography::TomographicSnapshot second;

    [[nodiscard]] std::vector<std::uint8_t> serialize() const;
    static EquivocationProof deserialize(std::span<const std::uint8_t> bytes);

    /// DHT insertion key: derived from the equivocator's public key, in a
    /// namespace disjoint from FaultAccusation::dht_key so proofs and
    /// accusations never shadow each other.
    static util::NodeId dht_key(const crypto::PublicKey& origin_key);
};

enum class EquivocationCheck {
    kOk,
    kOriginMismatch,   ///< the two snapshots name different origins
    kEpochMismatch,    ///< different epochs: consecutive rounds, not a lie
    kUnversioned,      ///< epoch 0 snapshots carry no uniqueness promise
    kIdenticalPayloads,  ///< the same snapshot twice proves nothing
    kBadSignature,     ///< a signature does not verify under the origin key
};

const char* to_string(EquivocationCheck check);

/// Third-party check: does this proof really convict `origin_key`'s holder
/// of signing two different snapshots for the same epoch?
EquivocationCheck verify_equivocation_proof(const EquivocationProof& proof,
                                            const crypto::PublicKey& origin_key,
                                            const crypto::KeyRegistry& registry);

}  // namespace concilium::core
