// Verdict ledgers and the accusation error model (Sections 3.4, 4.3).
//
// Each blame evaluation is thresholded into a binary verdict: blame below
// the threshold acquits the forwarder (the network is blamed); otherwise the
// forwarder is guilty.  "A maintains a sliding window of the last w verdicts
// that it issued for B ... If B receives m or more guilty verdicts in this
// window, A inserts a formal fault accusation into a DHT."
//
// With p_good / p_faulty the per-drop guilty-verdict probabilities of
// innocent and faulty nodes, the w-window count is binomial, giving the
// closed-form error rates of Section 4.3 (reproduced in Figure 6).

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/ids.h"
#include "util/stats.h"
#include "util/time.h"

namespace concilium::core {

struct VerdictParams {
    /// "nodes receiving less than 40% blame are proclaimed innocent and all
    /// other nodes receive a guilty verdict" (Section 4.3).
    double guilty_blame_threshold = 0.4;
    int window = 100;            ///< w
    int accusation_threshold = 6;  ///< m
};

/// True when this blame value convicts the forwarder for a single drop.
bool is_guilty_verdict(double blame, const VerdictParams& params);

/// One judging node's per-suspect sliding verdict windows.
class VerdictLedger {
  public:
    explicit VerdictLedger(VerdictParams params) : params_(params) {}

    struct RecordOutcome {
        bool guilty = false;
        int guilty_in_window = 0;
        /// Set when the guilty count reached m: time to file a formal
        /// accusation against the suspect.
        bool accusation_triggered = false;
    };

    /// Appends a verdict derived from `blame` for `suspect` at time `at`.
    RecordOutcome record(const util::NodeId& suspect, double blame,
                         util::SimTime at);

    [[nodiscard]] int guilty_count(const util::NodeId& suspect) const;
    [[nodiscard]] int verdict_count(const util::NodeId& suspect) const;
    [[nodiscard]] const VerdictParams& params() const noexcept {
        return params_;
    }

    /// One verdict as kept in a window: outcome plus issue time.
    struct VerdictEntry {
        bool guilty = false;
        util::SimTime at = 0;
    };

    /// Withdraws guilty verdicts issued against `suspect` in [from, to]:
    /// a verified recovery announcement proved the suspect was crashed
    /// then, so those verdicts were degraded-mode presumptions, not
    /// evidence (RECOVERY.md).  The entries stay in the window as innocent
    /// so w keeps counting real observations.  Returns the number
    /// withdrawn.
    int retract_guilty(const util::NodeId& suspect, util::SimTime from,
                       util::SimTime to);

    /// Durable-state checkpoint of one suspect's window, as journaled by
    /// runtime::NodeJournal; entries oldest first.
    struct WindowSnapshot {
        util::NodeId suspect;
        std::vector<VerdictEntry> entries;
    };

    /// Every window, ordered by suspect id (deterministic across runs).
    [[nodiscard]] std::vector<WindowSnapshot> export_windows() const;

    /// Replaces this ledger's windows with checkpointed ones (crash
    /// recovery: the restarted judge resumes mid-window instead of
    /// forgetting m-1 of the m guilty verdicts it had already issued).
    void restore_windows(const std::vector<WindowSnapshot>& windows);

  private:
    struct Window {
        util::NodeId suspect;
        std::deque<VerdictEntry> verdicts;
        int guilty = 0;
    };
    [[nodiscard]] const Window* window_of(const util::NodeId& suspect) const;
    [[nodiscard]] Window& window_slot(const util::NodeId& suspect);

    VerdictParams params_;
    /// Dense per-suspect windows in first-verdict order; suspects resolve to
    /// slots once at the call boundary.
    std::vector<Window> windows_;
    std::unordered_map<util::NodeId, std::uint32_t, util::NodeIdHash>
        slot_of_;  // hot-path-lint: boundary
};

/// Section 4.3: Pr(false positive) = Pr(W >= m), W ~ Binomial(w, p_good).
double accusation_false_positive(int window, int threshold_m, double p_good);

/// Section 4.3: Pr(false negative) = Pr(W < m), W ~ Binomial(w, p_faulty).
double accusation_false_negative(int window, int threshold_m, double p_faulty);

/// Smallest m in [1, w] driving both error rates below `bound`, or nullopt
/// when no m achieves it (Figure 6: m=6 honest, m=16 with 20% colluders).
std::optional<int> minimal_accusation_threshold(int window, double p_good,
                                                double p_faulty, double bound);

}  // namespace concilium::core
