// Forwarding commitments (Section 3.6).
//
// "When A sends a message through B, B sends a signed statement to A
// indicating its willingness to forward the message.  The commitment
// includes a timestamp, A's identifier, B's identifier, and the identifier
// of the ultimate destination Z ...  In this fashion, B can only be blamed
// for dropping messages that it agreed to forward."  This stops a malicious
// *sender* from fabricating accusations about messages it never sent.

#pragma once

#include <cstdint>
#include <vector>

#include "crypto/keys.h"
#include "util/ids.h"
#include "util/serialize.h"
#include "util/time.h"

namespace concilium::core {

struct ForwardingCommitment {
    util::NodeId sender;       ///< A
    util::NodeId forwarder;    ///< B, the signer
    util::NodeId destination;  ///< Z
    std::uint64_t message_id = 0;
    util::SimTime at = 0;
    crypto::Signature signature;  ///< by the forwarder

    [[nodiscard]] std::vector<std::uint8_t> signed_payload() const;

    /// Wire size: three identifiers, message id, timestamp, signature.
    [[nodiscard]] static constexpr std::size_t wire_bytes() {
        return 3 * util::NodeId::kBytes + 8 + 8 + crypto::Signature::kWireBytes;
    }
};

/// Issued by the forwarder (whose keys sign the statement).
ForwardingCommitment make_forwarding_commitment(
    const util::NodeId& sender, const util::NodeId& forwarder,
    const util::NodeId& destination, std::uint64_t message_id,
    util::SimTime at, const crypto::KeyPair& forwarder_keys);

/// Checks the forwarder's signature and that the commitment names the
/// expected parties.
bool verify_forwarding_commitment(const ForwardingCommitment& commitment,
                                  const crypto::PublicKey& forwarder_key,
                                  const crypto::KeyRegistry& registry);

}  // namespace concilium::core
