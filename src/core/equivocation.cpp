#include "core/equivocation.h"

#include <stdexcept>

#include "util/metrics.h"

namespace concilium::core {

std::vector<std::uint8_t> EquivocationProof::serialize() const {
    util::ByteWriter w;
    tomography::write_snapshot_wire(w, first);
    tomography::write_snapshot_wire(w, second);
    return w.data();
}

EquivocationProof EquivocationProof::deserialize(
    std::span<const std::uint8_t> bytes) {
    util::ByteReader r(bytes);
    EquivocationProof proof;
    proof.first = tomography::read_snapshot_wire(r);
    proof.second = tomography::read_snapshot_wire(r);
    if (!r.exhausted()) {
        throw std::invalid_argument(
            "EquivocationProof::deserialize: trailing bytes");
    }
    return proof;
}

util::NodeId EquivocationProof::dht_key(const crypto::PublicKey& origin_key) {
    return util::NodeId::hash_of(origin_key.to_string() + "/equivocation");
}

const char* to_string(EquivocationCheck check) {
    switch (check) {
        case EquivocationCheck::kOk: return "ok";
        case EquivocationCheck::kOriginMismatch: return "origin mismatch";
        case EquivocationCheck::kEpochMismatch: return "epoch mismatch";
        case EquivocationCheck::kUnversioned: return "unversioned snapshots";
        case EquivocationCheck::kIdenticalPayloads:
            return "identical payloads";
        case EquivocationCheck::kBadSignature: return "bad signature";
    }
    return "?";
}

EquivocationCheck verify_equivocation_proof(
    const EquivocationProof& proof, const crypto::PublicKey& origin_key,
    const crypto::KeyRegistry& registry) {
    const EquivocationCheck result = [&] {
        if (!(proof.first.origin == proof.second.origin)) {
            return EquivocationCheck::kOriginMismatch;
        }
        if (proof.first.epoch != proof.second.epoch) {
            return EquivocationCheck::kEpochMismatch;
        }
        if (proof.first.epoch == 0) return EquivocationCheck::kUnversioned;
        if (proof.first.signed_payload() == proof.second.signed_payload()) {
            return EquivocationCheck::kIdenticalPayloads;
        }
        if (!tomography::verify_snapshot(proof.first, origin_key, registry) ||
            !tomography::verify_snapshot(proof.second, origin_key, registry)) {
            return EquivocationCheck::kBadSignature;
        }
        return EquivocationCheck::kOk;
    }();
    {
        using util::metrics::Registry;
        static auto& ok =
            Registry::global().counter("core.equivocation_proofs_verified");
        static auto& bad =
            Registry::global().counter("core.equivocation_checks_failed");
        result == EquivocationCheck::kOk ? ok.add(1) : bad.add(1);
    }
    return result;
}

}  // namespace concilium::core
