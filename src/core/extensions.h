// Implementation options (Section 3.7).
//
// Two optimizations the paper sketches without evaluating:
//
// 1. *Consolidated probing.*  "hosts which trust each other and reside in
//    the same stub network can consolidate probing responsibility.  For
//    example, hosts could take turns issuing the probes for the multi-forest
//    induced by their collective routing state ...  the bandwidth cost for
//    probing shared links could be amortized across multiple nodes."
//    plan_probe_sharing() groups co-located overlay members by their
//    administrative (stub) domain and quantifies the amortized heavyweight
//    probing cost of rotating one multi-forest probe through the group.
//
// 2. *Batched acknowledgments.*  "If two peers exchange many packets, it may
//    be useful for a single acknowledgment to cover multiple messages.  The
//    acknowledgment could indicate loss rates in several ways, e.g., through
//    simple counters indicating how many packets arrived, or packet hashes
//    identifying the specific packets which were received."  AckBatch
//    implements both encodings with honest wire-size accounting.

#pragma once

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "core/bandwidth.h"
#include "crypto/keys.h"
#include "net/topology.h"
#include "overlay/network.h"
#include "tomography/overlay_trees.h"
#include "util/serialize.h"
#include "util/time.h"

namespace concilium::core {

// ------------------------------------------------------ consolidated probing

struct ProbeSharingGroup {
    net::DomainId domain = net::kNoDomain;
    std::vector<overlay::MemberIndex> members;
    /// Heavyweight bytes each member pays probing alone, summed.
    double individual_bytes = 0.0;
    /// Heavyweight bytes for one probe of the group's multi-forest,
    /// amortized over the group per rotation round.
    double shared_bytes_per_member = 0.0;
    /// How many times, on average, individual probing covers each distinct
    /// link of the group's combined forest: sum of per-member tree links
    /// over distinct union links.  This is the redundancy that consolidation
    /// eliminates ("the bandwidth cost for probing shared links could be
    /// amortized across multiple nodes").
    double link_redundancy = 1.0;

    /// Per-member all-pairs byte ratio (individual / shared).  Note the
    /// honest negative result our evaluation surfaces: with randomly
    /// assigned overlay identifiers, co-located members have nearly
    /// disjoint routing peers, so C(leaves, 2) grows superadditively and
    /// this ratio tends BELOW 1 -- naive consolidation costs more unless
    /// peer sets overlap.  The redundancy factor above is where the real
    /// savings live.
    [[nodiscard]] double savings_factor() const {
        const double each =
            individual_bytes / static_cast<double>(members.size());
        return shared_bytes_per_member <= 0.0
                   ? 1.0
                   : each / shared_bytes_per_member;
    }
};

struct ProbeSharingPlan {
    std::vector<ProbeSharingGroup> groups;  ///< only groups with >= 2 members
    std::size_t solo_members = 0;           ///< nodes with no co-located peer

    /// Mean per-member all-pairs byte ratio across shared groups
    /// (1.0 = break-even; see ProbeSharingGroup::savings_factor).
    [[nodiscard]] double mean_savings() const;
    /// Mean duplicate-coverage factor eliminated by consolidation.
    [[nodiscard]] double mean_link_redundancy() const;
};

/// Groups overlay members by stub domain and computes the probe-sharing
/// economics of Section 3.7.
ProbeSharingPlan plan_probe_sharing(const overlay::OverlayNetwork& net,
                                    const net::Topology& topology,
                                    const tomography::OverlayTrees& trees,
                                    const HeavyweightProbeCost& cost = {});

// --------------------------------------------------------- ack batching

enum class AckEncoding : std::uint8_t {
    kPerMessage = 0,  ///< one signed ack per message
    kCounter = 1,     ///< contiguous-range counter ("n of your packets")
    kHashList = 2,    ///< explicit per-packet identifiers
};

/// One signed acknowledgment covering a batch of messages.
struct BatchedAck {
    util::NodeId sender;    ///< whose packets are acknowledged
    util::NodeId receiver;  ///< the signer
    AckEncoding encoding = AckEncoding::kHashList;
    /// kCounter: [first_id, first_id + count) all received.
    std::uint64_t first_id = 0;
    std::uint64_t count = 0;
    /// kHashList: exact identifiers received (sorted).
    std::vector<std::uint64_t> ids;
    util::SimTime at = 0;
    crypto::Signature signature;

    [[nodiscard]] std::vector<std::uint8_t> signed_payload() const;

    /// True when this acknowledgment covers message `id`.
    [[nodiscard]] bool covers(std::uint64_t id) const;

    /// Modelled wire size for each encoding (signature at PSS-R width).
    [[nodiscard]] std::size_t wire_bytes() const;
    /// Per-message ack baseline for n messages, for comparison.
    static std::size_t per_message_wire_bytes(std::size_t n);
};

/// Receiver-side accumulator: record received message ids, flush a signed
/// batch periodically (piggybacked on availability-probe responses, like the
/// forwarding commitments of Section 3.6).
class AckBatcher {
  public:
    AckBatcher(util::NodeId sender, util::NodeId receiver)
        : sender_(sender), receiver_(receiver) {}

    void record(std::uint64_t message_id);
    [[nodiscard]] std::size_t pending() const noexcept { return ids_.size(); }

    /// Emits a signed batch and clears the accumulator.  Uses the counter
    /// encoding when the recorded ids form one contiguous range, the hash
    /// list otherwise.
    [[nodiscard]] BatchedAck flush(util::SimTime at,
                                   const crypto::KeyPair& receiver_keys);

  private:
    util::NodeId sender_;
    util::NodeId receiver_;
    std::unordered_set<std::uint64_t> ids_;
};

/// Verifies the receiver's signature over the batch.
bool verify_batched_ack(const BatchedAck& ack,
                        const crypto::PublicKey& receiver_key,
                        const crypto::KeyRegistry& registry);

// -------------------------------------------- advertisement diff accounting

/// "This overhead can be decreased by sending diffs for updated entries
/// instead of entire tables" (Section 4.4): wire size of a diff carrying
/// `changed_entries` signed entries (plus their path summaries).
double advertisement_diff_bytes(int changed_entries);

}  // namespace concilium::core
