#include "core/verdicts.h"

#include <algorithm>
#include <stdexcept>

#include "util/metrics.h"

namespace concilium::core {

bool is_guilty_verdict(double blame, const VerdictParams& params) {
    using util::metrics::Registry;
    static auto& evals = Registry::global().counter("core.verdict_evaluations");
    static auto& guilty_c = Registry::global().counter("core.verdicts_guilty");
    static auto& innocent_c =
        Registry::global().counter("core.verdicts_innocent");
    evals.add(1);
    const bool guilty = blame >= params.guilty_blame_threshold;
    guilty ? guilty_c.add(1) : innocent_c.add(1);
    return guilty;
}

const VerdictLedger::Window* VerdictLedger::window_of(
    const util::NodeId& suspect) const {
    const auto it = slot_of_.find(suspect);
    return it == slot_of_.end() ? nullptr : &windows_[it->second];
}

VerdictLedger::Window& VerdictLedger::window_slot(const util::NodeId& suspect) {
    const auto it = slot_of_.find(suspect);
    if (it != slot_of_.end()) return windows_[it->second];
    slot_of_.emplace(suspect, static_cast<std::uint32_t>(windows_.size()));
    windows_.push_back(Window{suspect, {}, 0});
    return windows_.back();
}

VerdictLedger::RecordOutcome VerdictLedger::record(const util::NodeId& suspect,
                                                   double blame,
                                                   util::SimTime at) {
    Window& win = window_slot(suspect);
    const bool guilty = is_guilty_verdict(blame, params_);
    win.verdicts.push_back({guilty, at});
    if (guilty) ++win.guilty;
    while (win.verdicts.size() > static_cast<std::size_t>(params_.window)) {
        if (win.verdicts.front().guilty) --win.guilty;
        win.verdicts.pop_front();
    }
    RecordOutcome out;
    out.guilty = guilty;
    out.guilty_in_window = win.guilty;
    out.accusation_triggered = win.guilty >= params_.accusation_threshold;
    {
        using util::metrics::Registry;
        static auto& recorded = Registry::global().counter("core.ledger_verdicts");
        static auto& triggered =
            Registry::global().counter("core.accusations_triggered");
        recorded.add(1);
        if (out.accusation_triggered) triggered.add(1);
    }
    return out;
}

int VerdictLedger::guilty_count(const util::NodeId& suspect) const {
    const Window* win = window_of(suspect);
    return win == nullptr ? 0 : win->guilty;
}

int VerdictLedger::verdict_count(const util::NodeId& suspect) const {
    const Window* win = window_of(suspect);
    return win == nullptr ? 0 : static_cast<int>(win->verdicts.size());
}

int VerdictLedger::retract_guilty(const util::NodeId& suspect,
                                  util::SimTime from, util::SimTime to) {
    const auto it = slot_of_.find(suspect);
    if (it == slot_of_.end()) return 0;
    Window& win = windows_[it->second];
    int retracted = 0;
    for (VerdictEntry& entry : win.verdicts) {
        if (!entry.guilty || entry.at < from || entry.at > to) continue;
        entry.guilty = false;
        --win.guilty;
        ++retracted;
    }
    if (retracted > 0) {
        static auto& retractions = util::metrics::Registry::global().counter(
            "core.verdicts_retracted");
        retractions.add(retracted);
    }
    return retracted;
}

std::vector<VerdictLedger::WindowSnapshot> VerdictLedger::export_windows()
    const {
    std::vector<WindowSnapshot> out;
    out.reserve(windows_.size());
    for (const Window& win : windows_) {
        WindowSnapshot snap;
        snap.suspect = win.suspect;
        snap.entries.assign(win.verdicts.begin(), win.verdicts.end());
        out.push_back(std::move(snap));
    }
    // Slots sit in first-verdict order; checkpoints must not depend on it.
    std::sort(out.begin(), out.end(),
              [](const WindowSnapshot& a, const WindowSnapshot& b) {
                  return a.suspect < b.suspect;
              });
    return out;
}

void VerdictLedger::restore_windows(
    const std::vector<WindowSnapshot>& windows) {
    windows_.clear();
    slot_of_.clear();
    for (const WindowSnapshot& snap : windows) {
        Window& win = window_slot(snap.suspect);
        for (const VerdictEntry& entry : snap.entries) {
            win.verdicts.push_back(entry);
            if (entry.guilty) ++win.guilty;
        }
        while (win.verdicts.size() >
               static_cast<std::size_t>(params_.window)) {
            if (win.verdicts.front().guilty) --win.guilty;
            win.verdicts.pop_front();
        }
    }
}

double accusation_false_positive(int window, int threshold_m, double p_good) {
    if (window < 1 || threshold_m < 0) {
        throw std::invalid_argument("accusation_false_positive: bad window/m");
    }
    static auto& evals = util::metrics::Registry::global().counter(
        "core.accusation_model_evaluations");
    evals.add(1);
    return util::binomial_upper_tail(window, threshold_m, p_good);
}

double accusation_false_negative(int window, int threshold_m,
                                 double p_faulty) {
    if (window < 1 || threshold_m < 0) {
        throw std::invalid_argument("accusation_false_negative: bad window/m");
    }
    static auto& evals = util::metrics::Registry::global().counter(
        "core.accusation_model_evaluations");
    evals.add(1);
    return util::binomial_lower_tail_exclusive(window, threshold_m, p_faulty);
}

std::optional<int> minimal_accusation_threshold(int window, double p_good,
                                                double p_faulty, double bound) {
    for (int m = 1; m <= window; ++m) {
        if (accusation_false_positive(window, m, p_good) < bound &&
            accusation_false_negative(window, m, p_faulty) < bound) {
            return m;
        }
    }
    return std::nullopt;
}

}  // namespace concilium::core
