#include "core/verdicts.h"

#include <stdexcept>

namespace concilium::core {

bool is_guilty_verdict(double blame, const VerdictParams& params) {
    return blame >= params.guilty_blame_threshold;
}

VerdictLedger::RecordOutcome VerdictLedger::record(const util::NodeId& suspect,
                                                   double blame,
                                                   util::SimTime /*at*/) {
    Window& win = windows_[suspect];
    const bool guilty = is_guilty_verdict(blame, params_);
    win.verdicts.push_back(guilty);
    if (guilty) ++win.guilty;
    while (win.verdicts.size() > static_cast<std::size_t>(params_.window)) {
        if (win.verdicts.front()) --win.guilty;
        win.verdicts.pop_front();
    }
    RecordOutcome out;
    out.guilty = guilty;
    out.guilty_in_window = win.guilty;
    out.accusation_triggered = win.guilty >= params_.accusation_threshold;
    return out;
}

int VerdictLedger::guilty_count(const util::NodeId& suspect) const {
    const auto it = windows_.find(suspect);
    return it == windows_.end() ? 0 : it->second.guilty;
}

int VerdictLedger::verdict_count(const util::NodeId& suspect) const {
    const auto it = windows_.find(suspect);
    return it == windows_.end() ? 0
                                : static_cast<int>(it->second.verdicts.size());
}

double accusation_false_positive(int window, int threshold_m, double p_good) {
    if (window < 1 || threshold_m < 0) {
        throw std::invalid_argument("accusation_false_positive: bad window/m");
    }
    return util::binomial_upper_tail(window, threshold_m, p_good);
}

double accusation_false_negative(int window, int threshold_m,
                                 double p_faulty) {
    if (window < 1 || threshold_m < 0) {
        throw std::invalid_argument("accusation_false_negative: bad window/m");
    }
    return util::binomial_lower_tail_exclusive(window, threshold_m, p_faulty);
}

std::optional<int> minimal_accusation_threshold(int window, double p_good,
                                                double p_faulty, double bound) {
    for (int m = 1; m <= window; ++m) {
        if (accusation_false_positive(window, m, p_good) < bound &&
            accusation_false_negative(window, m, p_faulty) < bound) {
            return m;
        }
    }
    return std::nullopt;
}

}  // namespace concilium::core
