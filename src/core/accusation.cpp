#include "core/accusation.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "util/metrics.h"

namespace concilium::core {

namespace {

void write_signature(util::ByteWriter& w, const crypto::Signature& sig) {
    w.bytes(sig.bytes());
}

crypto::Signature read_signature(util::ByteReader& r) {
    const auto raw = r.bytes();
    if (raw.size() != crypto::Signature::kBytes) {
        throw std::out_of_range("read_signature: bad length");
    }
    std::array<std::uint8_t, crypto::Signature::kBytes> arr{};
    std::copy(raw.begin(), raw.end(), arr.begin());
    return crypto::Signature(arr);
}

void write_commitment(util::ByteWriter& w, const ForwardingCommitment& c) {
    w.node_id(c.sender);
    w.node_id(c.forwarder);
    w.node_id(c.destination);
    w.u64(c.message_id);
    w.i64(c.at);
    write_signature(w, c.signature);
}

ForwardingCommitment read_commitment(util::ByteReader& r) {
    ForwardingCommitment c;
    c.sender = r.node_id();
    c.forwarder = r.node_id();
    c.destination = r.node_id();
    c.message_id = r.u64();
    c.at = r.i64();
    c.signature = read_signature(r);
    return c;
}

void write_evidence_body(util::ByteWriter& w, const BlameEvidence& e) {
    w.node_id(e.judge);
    w.node_id(e.suspect);
    w.u64(e.message_id);
    w.i64(e.message_time);
    w.u32(static_cast<std::uint32_t>(e.path_links.size()));
    for (const net::LinkId l : e.path_links) w.u32(l);
    w.u32(static_cast<std::uint32_t>(e.snapshots.size()));
    for (const auto& s : e.snapshots) tomography::write_snapshot_wire(w, s);
    write_commitment(w, e.commitment);
    w.f64(e.claimed_blame);
}

BlameEvidence read_evidence(util::ByteReader& r) {
    BlameEvidence e;
    e.judge = r.node_id();
    e.suspect = r.node_id();
    e.message_id = r.u64();
    e.message_time = r.i64();
    const std::uint32_t links = r.u32();
    e.path_links.reserve(links);
    for (std::uint32_t i = 0; i < links; ++i) e.path_links.push_back(r.u32());
    const std::uint32_t snaps = r.u32();
    e.snapshots.reserve(snaps);
    for (std::uint32_t i = 0; i < snaps; ++i) {
        e.snapshots.push_back(tomography::read_snapshot_wire(r));
    }
    e.commitment = read_commitment(r);
    e.claimed_blame = r.f64();
    e.judge_signature = read_signature(r);
    return e;
}

}  // namespace

std::vector<std::uint8_t> BlameEvidence::signed_payload() const {
    util::ByteWriter w;
    write_evidence_body(w, *this);
    return w.data();
}

std::vector<ProbeResult> probes_from_snapshots(
    std::span<const tomography::TomographicSnapshot> snapshots) {
    std::vector<ProbeResult> probes;
    for (const auto& snap : snapshots) {
        for (const auto& obs : snap.links) {
            probes.push_back(
                ProbeResult{snap.origin, obs.link, obs.up, snap.probed_at});
        }
    }
    return probes;
}

const util::NodeId& FaultAccusation::accused() const {
    if (evidence.empty()) {
        throw std::logic_error("FaultAccusation::accused: no evidence");
    }
    return evidence.back().suspect;
}

const util::NodeId& FaultAccusation::original_accused() const {
    if (evidence.empty()) {
        throw std::logic_error(
            "FaultAccusation::original_accused: no evidence");
    }
    return evidence.front().suspect;
}

std::vector<std::uint8_t> FaultAccusation::signed_payload() const {
    util::ByteWriter w;
    w.node_id(accuser);
    w.u32(static_cast<std::uint32_t>(evidence.size()));
    for (const BlameEvidence& e : evidence) {
        write_evidence_body(w, e);
        write_signature(w, e.judge_signature);
    }
    return w.data();
}

std::vector<std::uint8_t> FaultAccusation::serialize() const {
    util::ByteWriter w;
    w.node_id(accuser);
    w.u32(static_cast<std::uint32_t>(evidence.size()));
    for (const BlameEvidence& e : evidence) {
        write_evidence_body(w, e);
        write_signature(w, e.judge_signature);
    }
    write_signature(w, signature);
    return w.data();
}

FaultAccusation FaultAccusation::deserialize(
    std::span<const std::uint8_t> bytes) {
    util::ByteReader r(bytes);
    FaultAccusation acc;
    acc.accuser = r.node_id();
    const std::uint32_t n = r.u32();
    acc.evidence.reserve(n);
    for (std::uint32_t i = 0; i < n; ++i) {
        acc.evidence.push_back(read_evidence(r));
    }
    acc.signature = read_signature(r);
    if (!r.exhausted()) {
        throw std::invalid_argument(
            "FaultAccusation::deserialize: trailing bytes");
    }
    return acc;
}

util::NodeId FaultAccusation::dht_key(const crypto::PublicKey& accused_key) {
    return util::NodeId::hash_of(accused_key.to_string());
}

void amend_accusation(FaultAccusation& accusation, BlameEvidence revision,
                      const crypto::KeyPair& accuser_keys) {
    if (accusation.evidence.empty()) {
        throw std::invalid_argument("amend_accusation: empty accusation");
    }
    if (!(revision.judge == accusation.accused())) {
        throw std::invalid_argument(
            "amend_accusation: revision judge must be the current accused");
    }
    accusation.evidence.push_back(std::move(revision));
    accusation.signature = accuser_keys.sign(accusation.signed_payload());
}

const char* to_string(AccusationCheck check) {
    switch (check) {
        case AccusationCheck::kOk: return "ok";
        case AccusationCheck::kEmptyEvidence: return "empty evidence";
        case AccusationCheck::kBadAccuserSignature:
            return "bad accuser signature";
        case AccusationCheck::kBrokenChain: return "broken revision chain";
        case AccusationCheck::kBadJudgeSignature:
            return "bad judge signature";
        case AccusationCheck::kBadCommitment:
            return "bad forwarding commitment";
        case AccusationCheck::kBadSnapshotSignature:
            return "bad snapshot signature";
        case AccusationCheck::kBlameMismatch: return "blame mismatch";
        case AccusationCheck::kBlameBelowThreshold:
            return "blame below threshold";
        case AccusationCheck::kBadPath: return "bad path claim";
        case AccusationCheck::kStaleEvidence:
            return "stale evidence (snapshot outside the admission window)";
        case AccusationCheck::kInsufficientEvidence:
            return "insufficient evidence (no admissible probe on the path)";
    }
    return "?";
}

AccusationCheck AccusationVerifier::verify_evidence(
    const BlameEvidence& ev) const {
    if (path_check_ &&
        !path_check_(ev.judge, ev.suspect, ev.path_links)) {
        return AccusationCheck::kBadPath;
    }
    const auto judge_key = key_of_(ev.judge);
    if (!judge_key.has_value() ||
        !registry_->verify(*judge_key, ev.signed_payload(),
                           ev.judge_signature)) {
        return AccusationCheck::kBadJudgeSignature;
    }
    // The suspect must have committed to forwarding this very message, at
    // (roughly) the time the judge claims it was sent: a genuine commitment
    // for an *old* message must not anchor an accusation about a new one.
    const auto suspect_key = key_of_(ev.suspect);
    if (!suspect_key.has_value()) return AccusationCheck::kBadCommitment;
    const ForwardingCommitment& c = ev.commitment;
    const util::SimTime skew = c.at >= ev.message_time
                                   ? c.at - ev.message_time
                                   : ev.message_time - c.at;
    if (!(c.forwarder == ev.suspect) || !(c.sender == ev.judge) ||
        c.message_id != ev.message_id || skew > blame_params_.delta ||
        !verify_forwarding_commitment(c, *suspect_key, *registry_)) {
        return AccusationCheck::kBadCommitment;
    }
    for (const auto& snap : ev.snapshots) {
        const auto origin_key = key_of_(snap.origin);
        if (!origin_key.has_value() ||
            !tomography::verify_snapshot(snap, *origin_key, *registry_)) {
            return AccusationCheck::kBadSnapshotSignature;
        }
        // Freshness: every bundled snapshot must come from the admission
        // window around the message.  compute_blame would discard the
        // out-of-window probes anyway, but a cherry-picked stale bundle
        // must be rejected outright rather than silently collapsing to
        // the evidence-free "presumed guilty" blame of 1.
        if (snap.probed_at < ev.message_time - blame_params_.delta ||
            snap.probed_at > ev.message_time + blame_params_.delta) {
            return AccusationCheck::kStaleEvidence;
        }
    }
    const auto probes = probes_from_snapshots(ev.snapshots);
    const BlameBreakdown breakdown = compute_blame(
        ev.path_links, probes, ev.message_time, ev.suspect, blame_params_);
    // Third parties demand *independent* corroboration: at least one
    // admitted probe on the claimed path.  The judge-side presumption of
    // guilt over an empty window (Section 3.4's "Otherwise, Concilium
    // determines that B was faulty") is how the judge breaks ties, but an
    // accusation carrying no admissible evidence is indistinguishable from
    // slander and convinces nobody.
    if (breakdown.links.empty()) {
        return AccusationCheck::kInsufficientEvidence;
    }
    if (std::abs(breakdown.blame - ev.claimed_blame) > 1e-9) {
        return AccusationCheck::kBlameMismatch;
    }
    if (!is_guilty_verdict(breakdown.blame, verdict_params_)) {
        return AccusationCheck::kBlameBelowThreshold;
    }
    return AccusationCheck::kOk;
}

AccusationCheck AccusationVerifier::verify(
    const FaultAccusation& accusation) const {
    const AccusationCheck result = [&]() -> AccusationCheck {
        if (accusation.evidence.empty()) return AccusationCheck::kEmptyEvidence;
        const auto accuser_key = key_of_(accusation.accuser);
        if (!accuser_key.has_value() ||
            !registry_->verify(*accuser_key, accusation.signed_payload(),
                               accusation.signature)) {
            return AccusationCheck::kBadAccuserSignature;
        }
        if (!(accusation.evidence.front().judge == accusation.accuser)) {
            return AccusationCheck::kBrokenChain;
        }
        for (std::size_t i = 1; i < accusation.evidence.size(); ++i) {
            if (!(accusation.evidence[i].judge ==
                  accusation.evidence[i - 1].suspect)) {
                return AccusationCheck::kBrokenChain;
            }
        }
        for (const BlameEvidence& ev : accusation.evidence) {
            const AccusationCheck check = verify_evidence(ev);
            if (check != AccusationCheck::kOk) return check;
        }
        return AccusationCheck::kOk;
    }();
    {
        using util::metrics::Registry;
        static auto& verified =
            Registry::global().counter("core.accusations_verified");
        static auto& failed =
            Registry::global().counter("core.accusation_checks_failed");
        result == AccusationCheck::kOk ? verified.add(1) : failed.add(1);
    }
    return result;
}

}  // namespace concilium::core
