#include "core/commitments.h"

namespace concilium::core {

std::vector<std::uint8_t> ForwardingCommitment::signed_payload() const {
    util::ByteWriter w;
    w.node_id(sender);
    w.node_id(forwarder);
    w.node_id(destination);
    w.u64(message_id);
    w.i64(at);
    return w.data();
}

ForwardingCommitment make_forwarding_commitment(
    const util::NodeId& sender, const util::NodeId& forwarder,
    const util::NodeId& destination, std::uint64_t message_id,
    util::SimTime at, const crypto::KeyPair& forwarder_keys) {
    ForwardingCommitment c;
    c.sender = sender;
    c.forwarder = forwarder;
    c.destination = destination;
    c.message_id = message_id;
    c.at = at;
    c.signature = forwarder_keys.sign(c.signed_payload());
    return c;
}

bool verify_forwarding_commitment(const ForwardingCommitment& commitment,
                                  const crypto::PublicKey& forwarder_key,
                                  const crypto::KeyRegistry& registry) {
    return registry.verify(forwarder_key, commitment.signed_payload(),
                           commitment.signature);
}

}  // namespace concilium::core
