// Reputation votes and sanction policies (Sections 3.6-3.7).
//
// Two misbehaviours fall outside the accusation protocol's reach: a
// forwarder that refuses to issue forwarding commitments at all, and the
// response policy once a node *is* credibly accused.  For the former the
// paper defers to a decentralized reputation system (Creedence-style votes
// of no confidence); for the latter it leaves the sanction policy to the
// deployment, with the caveat that leaf-set eviction must be globally
// consistent or higher-level services break (Section 3.7).

#pragma once

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/ids.h"
#include "util/time.h"

namespace concilium::core {

/// A minimal vote-of-no-confidence ledger.  One vote per (voter, subject)
/// pair counts; re-votes refresh that voter's timestamp.  Votes older than
/// the expiry window decay: a node that stopped refusing commitments months
/// ago should not stay a poor peer forever on stale evidence.
class ReputationBook {
  public:
    /// vote_expiry: a vote older than now - vote_expiry no longer counts in
    /// the time-aware queries.  0 = votes never expire.
    explicit ReputationBook(util::SimTime vote_expiry = 0)
        : vote_expiry_(vote_expiry) {}

    void cast_vote(const util::NodeId& voter, const util::NodeId& subject,
                   util::SimTime at);

    /// Number of distinct voters against the subject, ever (ignores expiry;
    /// kept for audit-trail queries).
    [[nodiscard]] int votes_against(const util::NodeId& subject) const;

    /// Distinct voters whose latest vote is still within the expiry window
    /// at `now`.
    [[nodiscard]] int votes_against(const util::NodeId& subject,
                                    util::SimTime now) const;

    /// Lifetime-vote threshold check (ignores expiry).
    [[nodiscard]] bool poor_peer(const util::NodeId& subject,
                                 int vote_threshold) const;

    /// Expiry-aware threshold check: only unexpired votes count.
    [[nodiscard]] bool poor_peer(const util::NodeId& subject,
                                 int vote_threshold, util::SimTime now) const;

    [[nodiscard]] util::SimTime vote_expiry() const noexcept {
        return vote_expiry_;
    }

  private:
    struct Entry {
        util::NodeId subject;
        /// Latest vote time per distinct voter.  A subject accumulates at
        /// most one row per routing peer, so a scanned vector beats a hash
        /// map on both speed and determinism.
        std::vector<std::pair<util::NodeId, util::SimTime>> voters;
        util::SimTime last_vote = 0;
    };
    [[nodiscard]] const Entry* entry_of(const util::NodeId& subject) const;

    util::SimTime vote_expiry_;
    /// Dense per-subject entries in first-vote order; subjects resolve to
    /// slots once at the call boundary.
    std::vector<Entry> entries_;
    std::unordered_map<util::NodeId, std::uint32_t, util::NodeIdHash>
        slot_of_;  // hot-path-lint: boundary
};

/// Deployment-chosen response to verified accusations (Section 3.7).
enum class SanctionPolicy {
    kNone,                ///< diagnose only; route around failures
    kDistrustSensitive,   ///< keep peering, withhold sensitive messages
    kUniversalBlacklist,  ///< refuse to peer once the accusation rate is met
};

struct SanctionDecision {
    bool allow_peering = true;
    bool allow_sensitive_messages = true;
    /// Leaf-set membership must NOT be revoked locally even when blacklisted
    /// ("honest nodes must not make local decisions to evict accused nodes
    /// from leaf sets.  Otherwise, inconsistent routing will arise").
    bool keep_in_leaf_set = true;
};

/// Applies a policy given the number of *independently verified* accusations
/// against a prospective peer and the policy's accusation threshold.
SanctionDecision evaluate_sanction(SanctionPolicy policy,
                                   int verified_accusations,
                                   int blacklist_threshold);

}  // namespace concilium::core
