// Reputation votes and sanction policies (Sections 3.6-3.7).
//
// Two misbehaviours fall outside the accusation protocol's reach: a
// forwarder that refuses to issue forwarding commitments at all, and the
// response policy once a node *is* credibly accused.  For the former the
// paper defers to a decentralized reputation system (Creedence-style votes
// of no confidence); for the latter it leaves the sanction policy to the
// deployment, with the caveat that leaf-set eviction must be globally
// consistent or higher-level services break (Section 3.7).

#pragma once

#include <unordered_map>
#include <unordered_set>

#include "util/ids.h"
#include "util/time.h"

namespace concilium::core {

/// A minimal vote-of-no-confidence ledger.  One vote per (voter, subject)
/// pair counts; re-votes refresh the timestamp only.
class ReputationBook {
  public:
    void cast_vote(const util::NodeId& voter, const util::NodeId& subject,
                   util::SimTime at);

    /// Number of distinct voters against the subject.
    [[nodiscard]] int votes_against(const util::NodeId& subject) const;

    [[nodiscard]] bool poor_peer(const util::NodeId& subject,
                                 int vote_threshold) const;

  private:
    struct Entry {
        std::unordered_set<util::NodeId, util::NodeIdHash> voters;
        util::SimTime last_vote = 0;
    };
    std::unordered_map<util::NodeId, Entry, util::NodeIdHash> entries_;
};

/// Deployment-chosen response to verified accusations (Section 3.7).
enum class SanctionPolicy {
    kNone,                ///< diagnose only; route around failures
    kDistrustSensitive,   ///< keep peering, withhold sensitive messages
    kUniversalBlacklist,  ///< refuse to peer once the accusation rate is met
};

struct SanctionDecision {
    bool allow_peering = true;
    bool allow_sensitive_messages = true;
    /// Leaf-set membership must NOT be revoked locally even when blacklisted
    /// ("honest nodes must not make local decisions to evict accused nodes
    /// from leaf sets.  Otherwise, inconsistent routing will arise").
    bool keep_in_leaf_set = true;
};

/// Applies a policy given the number of *independently verified* accusations
/// against a prospective peer and the policy's accusation threshold.
SanctionDecision evaluate_sanction(SanctionPolicy policy,
                                   int verified_accusations,
                                   int blacklist_threshold);

}  // namespace concilium::core
