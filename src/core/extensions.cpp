#include "core/extensions.h"

#include <algorithm>
#include <map>
#include <unordered_set>

#include "overlay/advertisement.h"

namespace concilium::core {

ProbeSharingPlan plan_probe_sharing(const overlay::OverlayNetwork& net,
                                    const net::Topology& topology,
                                    const tomography::OverlayTrees& trees,
                                    const HeavyweightProbeCost& cost) {
    // Bucket members by administrative domain.
    std::map<net::DomainId, std::vector<overlay::MemberIndex>> buckets;
    for (overlay::MemberIndex m = 0; m < net.size(); ++m) {
        buckets[topology.domain(net.member(m).ip())].push_back(m);
    }

    ProbeSharingPlan plan;
    for (auto& [domain, members] : buckets) {
        if (members.size() < 2) {
            plan.solo_members += members.size();
            continue;
        }
        ProbeSharingGroup group;
        group.domain = domain;
        group.members = members;
        // Individual cost: each member stripes its own leaves.
        std::unordered_set<overlay::MemberIndex> union_peers;
        std::unordered_set<net::LinkId> union_links;
        std::size_t links_sum = 0;
        for (const overlay::MemberIndex m : members) {
            const double leaves =
                static_cast<double>(trees.tree(m).leaves().size());
            group.individual_bytes +=
                BandwidthModel::heavyweight_probe_bytes(leaves, cost);
            for (const overlay::MemberIndex peer : trees.leaf_members(m)) {
                union_peers.insert(peer);
            }
            links_sum += trees.tree(m).links().size();
            union_links.insert(trees.tree(m).links().begin(),
                               trees.tree(m).links().end());
        }
        group.link_redundancy =
            union_links.empty()
                ? 1.0
                : static_cast<double>(links_sum) /
                      static_cast<double>(union_links.size());
        // Shared cost: one probe of the multi-forest (the union of the
        // group's routing peers), rotated through the group -- each round a
        // single member pays for everyone.
        const double shared_total = BandwidthModel::heavyweight_probe_bytes(
            static_cast<double>(union_peers.size()), cost);
        group.shared_bytes_per_member =
            shared_total / static_cast<double>(members.size());
        plan.groups.push_back(std::move(group));
    }
    return plan;
}

double ProbeSharingPlan::mean_savings() const {
    if (groups.empty()) return 1.0;
    double sum = 0.0;
    for (const ProbeSharingGroup& g : groups) sum += g.savings_factor();
    return sum / static_cast<double>(groups.size());
}

double ProbeSharingPlan::mean_link_redundancy() const {
    if (groups.empty()) return 1.0;
    double sum = 0.0;
    for (const ProbeSharingGroup& g : groups) sum += g.link_redundancy;
    return sum / static_cast<double>(groups.size());
}

// --------------------------------------------------------- ack batching

std::vector<std::uint8_t> BatchedAck::signed_payload() const {
    util::ByteWriter w;
    w.node_id(sender);
    w.node_id(receiver);
    w.u8(static_cast<std::uint8_t>(encoding));
    w.u64(first_id);
    w.u64(count);
    w.u32(static_cast<std::uint32_t>(ids.size()));
    for (const std::uint64_t id : ids) w.u64(id);
    w.i64(at);
    return w.data();
}

bool BatchedAck::covers(std::uint64_t id) const {
    switch (encoding) {
        case AckEncoding::kPerMessage:
        case AckEncoding::kCounter:
            return id >= first_id && id - first_id < count;
        case AckEncoding::kHashList:
            return std::binary_search(ids.begin(), ids.end(), id);
    }
    return false;
}

std::size_t BatchedAck::wire_bytes() const {
    // Envelope: two identifiers, encoding byte, timestamp, signature.
    const std::size_t envelope = 2 * util::NodeId::kBytes + 1 + 4 +
                                 crypto::Signature::kWireBytes;
    switch (encoding) {
        case AckEncoding::kPerMessage:
            return per_message_wire_bytes(static_cast<std::size_t>(count));
        case AckEncoding::kCounter:
            return envelope + 8 + 4;  // first id + count
        case AckEncoding::kHashList:
            return envelope + 8 * ids.size();
    }
    return envelope;
}

std::size_t BatchedAck::per_message_wire_bytes(std::size_t n) {
    // Each standalone ack: identifiers + message id + timestamp + signature.
    return n * (2 * util::NodeId::kBytes + 8 + 4 +
                crypto::Signature::kWireBytes);
}

void AckBatcher::record(std::uint64_t message_id) { ids_.insert(message_id); }

BatchedAck AckBatcher::flush(util::SimTime at,
                             const crypto::KeyPair& receiver_keys) {
    BatchedAck ack;
    ack.sender = sender_;
    ack.receiver = receiver_;
    ack.at = at;
    std::vector<std::uint64_t> sorted(ids_.begin(), ids_.end());
    std::sort(sorted.begin(), sorted.end());
    ids_.clear();
    const bool contiguous =
        !sorted.empty() &&
        sorted.back() - sorted.front() + 1 == sorted.size();
    if (contiguous) {
        ack.encoding = AckEncoding::kCounter;
        ack.first_id = sorted.front();
        ack.count = sorted.size();
    } else {
        ack.encoding = AckEncoding::kHashList;
        ack.ids = std::move(sorted);
    }
    ack.signature = receiver_keys.sign(ack.signed_payload());
    return ack;
}

bool verify_batched_ack(const BatchedAck& ack,
                        const crypto::PublicKey& receiver_key,
                        const crypto::KeyRegistry& registry) {
    return registry.verify(receiver_key, ack.signed_payload(), ack.signature);
}

double advertisement_diff_bytes(int changed_entries) {
    // Each changed entry is re-signed (144 bytes) plus a fresh 1-byte path
    // summary; the envelope re-signs the diff itself.
    return changed_entries *
               (static_cast<double>(overlay::AdvertisedEntry::kWireBytes) +
                1.0) +
           util::NodeId::kBytes + 8 + crypto::Signature::kWireBytes;
}

}  // namespace concilium::core
