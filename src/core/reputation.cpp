#include "core/reputation.h"

namespace concilium::core {

void ReputationBook::cast_vote(const util::NodeId& voter,
                               const util::NodeId& subject, util::SimTime at) {
    Entry& e = entries_[subject];
    auto [it, inserted] = e.voters.emplace(voter, at);
    if (!inserted && at > it->second) it->second = at;  // re-vote refreshes
    if (at > e.last_vote) e.last_vote = at;
}

int ReputationBook::votes_against(const util::NodeId& subject) const {
    const auto it = entries_.find(subject);
    return it == entries_.end() ? 0 : static_cast<int>(it->second.voters.size());
}

int ReputationBook::votes_against(const util::NodeId& subject,
                                  util::SimTime now) const {
    const auto it = entries_.find(subject);
    if (it == entries_.end()) return 0;
    if (vote_expiry_ <= 0) {
        return static_cast<int>(it->second.voters.size());
    }
    const util::SimTime horizon = now - vote_expiry_;
    int live = 0;
    for (const auto& [voter, at] : it->second.voters) {
        if (at >= horizon) ++live;
    }
    return live;
}

bool ReputationBook::poor_peer(const util::NodeId& subject,
                               int vote_threshold) const {
    return votes_against(subject) >= vote_threshold;
}

bool ReputationBook::poor_peer(const util::NodeId& subject, int vote_threshold,
                               util::SimTime now) const {
    return votes_against(subject, now) >= vote_threshold;
}

SanctionDecision evaluate_sanction(SanctionPolicy policy,
                                   int verified_accusations,
                                   int blacklist_threshold) {
    SanctionDecision d;
    if (verified_accusations <= 0) return d;
    switch (policy) {
        case SanctionPolicy::kNone:
            break;
        case SanctionPolicy::kDistrustSensitive:
            d.allow_sensitive_messages = false;
            break;
        case SanctionPolicy::kUniversalBlacklist:
            d.allow_sensitive_messages = false;
            if (verified_accusations >= blacklist_threshold) {
                d.allow_peering = false;
            }
            break;
    }
    return d;
}

}  // namespace concilium::core
