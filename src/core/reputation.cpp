#include "core/reputation.h"

namespace concilium::core {

const ReputationBook::Entry* ReputationBook::entry_of(
    const util::NodeId& subject) const {
    const auto it = slot_of_.find(subject);
    return it == slot_of_.end() ? nullptr : &entries_[it->second];
}

void ReputationBook::cast_vote(const util::NodeId& voter,
                               const util::NodeId& subject, util::SimTime at) {
    Entry* e = nullptr;
    const auto it = slot_of_.find(subject);
    if (it != slot_of_.end()) {
        e = &entries_[it->second];
    } else {
        slot_of_.emplace(subject, static_cast<std::uint32_t>(entries_.size()));
        entries_.push_back(Entry{subject, {}, 0});
        e = &entries_.back();
    }
    bool found = false;
    for (auto& [v, t] : e->voters) {
        if (v == voter) {
            if (at > t) t = at;  // re-vote refreshes
            found = true;
            break;
        }
    }
    if (!found) e->voters.emplace_back(voter, at);
    if (at > e->last_vote) e->last_vote = at;
}

int ReputationBook::votes_against(const util::NodeId& subject) const {
    const Entry* e = entry_of(subject);
    return e == nullptr ? 0 : static_cast<int>(e->voters.size());
}

int ReputationBook::votes_against(const util::NodeId& subject,
                                  util::SimTime now) const {
    const Entry* e = entry_of(subject);
    if (e == nullptr) return 0;
    if (vote_expiry_ <= 0) {
        return static_cast<int>(e->voters.size());
    }
    const util::SimTime horizon = now - vote_expiry_;
    int live = 0;
    for (const auto& [voter, at] : e->voters) {
        if (at >= horizon) ++live;
    }
    return live;
}

bool ReputationBook::poor_peer(const util::NodeId& subject,
                               int vote_threshold) const {
    return votes_against(subject) >= vote_threshold;
}

bool ReputationBook::poor_peer(const util::NodeId& subject, int vote_threshold,
                               util::SimTime now) const {
    return votes_against(subject, now) >= vote_threshold;
}

SanctionDecision evaluate_sanction(SanctionPolicy policy,
                                   int verified_accusations,
                                   int blacklist_threshold) {
    SanctionDecision d;
    if (verified_accusations <= 0) return d;
    switch (policy) {
        case SanctionPolicy::kNone:
            break;
        case SanctionPolicy::kDistrustSensitive:
            d.allow_sensitive_messages = false;
            break;
        case SanctionPolicy::kUniversalBlacklist:
            d.allow_sensitive_messages = false;
            if (verified_accusations >= blacklist_threshold) {
                d.allow_peering = false;
            }
            break;
    }
    return d;
}

}  // namespace concilium::core
