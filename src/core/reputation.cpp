#include "core/reputation.h"

namespace concilium::core {

void ReputationBook::cast_vote(const util::NodeId& voter,
                               const util::NodeId& subject, util::SimTime at) {
    Entry& e = entries_[subject];
    e.voters.insert(voter);
    e.last_vote = at;
}

int ReputationBook::votes_against(const util::NodeId& subject) const {
    const auto it = entries_.find(subject);
    return it == entries_.end() ? 0 : static_cast<int>(it->second.voters.size());
}

bool ReputationBook::poor_peer(const util::NodeId& subject,
                               int vote_threshold) const {
    return votes_against(subject) >= vote_threshold;
}

SanctionDecision evaluate_sanction(SanctionPolicy policy,
                                   int verified_accusations,
                                   int blacklist_threshold) {
    SanctionDecision d;
    if (verified_accusations <= 0) return d;
    switch (policy) {
        case SanctionPolicy::kNone:
            break;
        case SanctionPolicy::kDistrustSensitive:
            d.allow_sensitive_messages = false;
            break;
        case SanctionPolicy::kUniversalBlacklist:
            d.allow_sensitive_messages = false;
            if (verified_accusations >= blacklist_threshold) {
                d.allow_peering = false;
            }
            break;
    }
    return d;
}

}  // namespace concilium::core
