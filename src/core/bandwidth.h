// Bandwidth model (Section 4.4).
//
// Two overheads dominate Concilium: exchanging signed, timestamped routing
// state, and tomographic probing.  The paper's worked example: in a
// 100,000-node overlay, a node's routing state references mu_phi + 16 peers
// (~77), an advertised table costs ~11.5 kB, and a full heavyweight probe of
// one tree costs C(77, 2) * 100 stripes * 2 probes * 30 bytes ~= 16.7 MB
// outgoing.  This module reproduces those numbers analytically.

#pragma once

#include "overlay/density.h"
#include "util/ids.h"

namespace concilium::core {

struct HeavyweightProbeCost {
    int stripes_per_pair = 100;  ///< stripes sent to each pair of peers
    int probes_per_stripe = 2;   ///< back-to-back UDP probes per stripe
    int probe_bytes = 30;        ///< 28 B IP+UDP headers + 16-bit nonce
};

class BandwidthModel {
  public:
    explicit BandwidthModel(util::OverlayGeometry geometry = {.digits = 32},
                            int leaf_count = 16)
        : geometry_(geometry), leaf_count_(leaf_count) {}

    /// Expected occupied jump-table slots mu_phi for an overlay of n nodes.
    [[nodiscard]] double expected_jump_entries(double n) const;

    /// Expected routing-state size: mu_phi + leaf count (the paper's "mu_phi
    /// + 16 peers").
    [[nodiscard]] double expected_routing_peers(double n) const;

    /// Bytes for one full routing-state advertisement: 144 bytes per entry
    /// (identifier + freshness timestamp + PSS-R signature) plus one byte of
    /// tomographic path summary per referenced peer.
    [[nodiscard]] double advertisement_bytes(double n) const;

    /// Outgoing bytes for one heavyweight striped probe of a tree with
    /// `leaves` leaf peers: C(leaves, 2) * stripes * probes * bytes.
    [[nodiscard]] static double heavyweight_probe_bytes(
        double leaves, const HeavyweightProbeCost& cost = {});

    [[nodiscard]] const util::OverlayGeometry& geometry() const noexcept {
        return geometry_;
    }
    [[nodiscard]] int leaf_count() const noexcept { return leaf_count_; }

  private:
    util::OverlayGeometry geometry_;
    int leaf_count_;
};

}  // namespace concilium::core
