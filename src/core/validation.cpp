#include "core/validation.h"

#include <unordered_set>

#include "crypto/tokens.h"
#include "util/metrics.h"

namespace concilium::core {

namespace {

// Validation outcomes live in the `overlay.` namespace: they describe the
// overlay's routing-state exchange, regardless of which layer runs the check.
void record_validation_outcome(AdvertisementCheck check) {
    using util::metrics::Counter;
    using util::metrics::Registry;
    static auto& validated = Registry::global().counter("overlay.ads_validated");
    static auto& accepted = Registry::global().counter("overlay.ads_accepted");
    static auto& rejected = Registry::global().counter("overlay.ads_rejected");
    validated.add(1);
    if (check == AdvertisementCheck::kOk) {
        accepted.add(1);
        return;
    }
    rejected.add(1);
    Counter* reason = nullptr;
    switch (check) {
        case AdvertisementCheck::kOk: break;
        case AdvertisementCheck::kBadOwnerSignature: {
            static auto& c = Registry::global().counter(
                "overlay.ad_reject.bad_owner_signature");
            reason = &c;
            break;
        }
        case AdvertisementCheck::kMalformedEntry: {
            static auto& c =
                Registry::global().counter("overlay.ad_reject.malformed_entry");
            reason = &c;
            break;
        }
        case AdvertisementCheck::kConstraintViolation: {
            static auto& c = Registry::global().counter(
                "overlay.ad_reject.constraint_violation");
            reason = &c;
            break;
        }
        case AdvertisementCheck::kBadEntryTimestamp: {
            static auto& c = Registry::global().counter(
                "overlay.ad_reject.bad_entry_timestamp");
            reason = &c;
            break;
        }
        case AdvertisementCheck::kStaleEntry: {
            static auto& c =
                Registry::global().counter("overlay.ad_reject.stale_entry");
            reason = &c;
            break;
        }
        case AdvertisementCheck::kTooSparse: {
            static auto& c =
                Registry::global().counter("overlay.ad_reject.too_sparse");
            reason = &c;
            break;
        }
    }
    if (reason != nullptr) reason->add(1);
}

}  // namespace

const char* to_string(AdvertisementCheck check) {
    switch (check) {
        case AdvertisementCheck::kOk: return "ok";
        case AdvertisementCheck::kBadOwnerSignature:
            return "bad owner signature";
        case AdvertisementCheck::kMalformedEntry: return "malformed entry";
        case AdvertisementCheck::kConstraintViolation:
            return "constraint violation";
        case AdvertisementCheck::kBadEntryTimestamp:
            return "bad entry timestamp";
        case AdvertisementCheck::kStaleEntry: return "stale entry";
        case AdvertisementCheck::kTooSparse: return "too sparse";
    }
    return "?";
}

AdvertisementCheck validate_advertisement(
    const overlay::JumpTableAdvertisement& ad, double local_density,
    util::SimTime now, const ValidationParams& params,
    const std::function<std::optional<crypto::PublicKey>(const util::NodeId&)>&
        key_of,
    const crypto::KeyRegistry& registry) {
    const AdvertisementCheck result = [&]() -> AdvertisementCheck {
    const auto owner_key = key_of(ad.owner);
    if (!owner_key.has_value() ||
        !registry.verify(*owner_key, ad.signed_payload(), ad.signature)) {
        return AdvertisementCheck::kBadOwnerSignature;
    }

    std::unordered_set<int> seen_slots;
    for (const overlay::AdvertisedEntry& e : ad.entries) {
        if (e.row < 0 || e.row >= params.geometry.rows() || e.col < 0 ||
            e.col >= params.geometry.columns()) {
            return AdvertisementCheck::kMalformedEntry;
        }
        const int slot = e.row * params.geometry.columns() + e.col;
        if (!seen_slots.insert(slot).second) {
            return AdvertisementCheck::kMalformedEntry;
        }
        // Structural constraint: shares a row-digit prefix with the owner
        // and has digit col at position row.
        if (e.peer.shared_prefix_digits(ad.owner) < e.row ||
            e.peer.digit(e.row) != e.col || e.peer == ad.owner) {
            return AdvertisementCheck::kConstraintViolation;
        }
        // Freshness: the referenced peer recently vouched for itself.
        const auto peer_key = key_of(e.peer);
        if (!peer_key.has_value() || !(e.freshness.signer == e.peer) ||
            !crypto::verify_signed_timestamp(e.freshness, *peer_key,
                                             registry)) {
            return AdvertisementCheck::kBadEntryTimestamp;
        }
        if (now - e.freshness.at > params.max_entry_age) {
            return AdvertisementCheck::kStaleEntry;
        }
    }

    if (overlay::jump_table_too_sparse(
            local_density, ad.density(params.geometry), params.gamma)) {
        return AdvertisementCheck::kTooSparse;
    }
    return AdvertisementCheck::kOk;
    }();
    record_validation_outcome(result);
    return result;
}

AdvertisementCheck validate_leaf_advertisement(
    const overlay::LeafSetAdvertisement& ad, double local_mean_spacing,
    util::SimTime now, const ValidationParams& params,
    const std::function<std::optional<crypto::PublicKey>(const util::NodeId&)>&
        key_of,
    const crypto::KeyRegistry& registry) {
    const AdvertisementCheck result = [&]() -> AdvertisementCheck {
    const auto owner_key = key_of(ad.owner);
    if (!owner_key.has_value() ||
        !registry.verify(*owner_key, ad.signed_payload(), ad.signature)) {
        return AdvertisementCheck::kBadOwnerSignature;
    }

    const auto check_side = [&](const std::vector<overlay::LeafEntry>& side,
                                bool clockwise) -> AdvertisementCheck {
        util::NodeId prev_distance;  // zero
        bool first = true;
        for (const overlay::LeafEntry& e : side) {
            if (e.peer == ad.owner) {
                return AdvertisementCheck::kMalformedEntry;
            }
            // Entries must march strictly outward from the owner on their
            // side of the ring.
            const util::NodeId d =
                clockwise ? util::clockwise_distance(ad.owner, e.peer)
                          : util::clockwise_distance(e.peer, ad.owner);
            if (!first && !(prev_distance < d)) {
                return AdvertisementCheck::kMalformedEntry;
            }
            prev_distance = d;
            first = false;

            const auto peer_key = key_of(e.peer);
            if (!peer_key.has_value() || !(e.freshness.signer == e.peer) ||
                !crypto::verify_signed_timestamp(e.freshness, *peer_key,
                                                 registry)) {
                return AdvertisementCheck::kBadEntryTimestamp;
            }
            if (now - e.freshness.at > params.max_entry_age) {
                return AdvertisementCheck::kStaleEntry;
            }
        }
        return AdvertisementCheck::kOk;
    };
    if (const auto c = check_side(ad.successors, true);
        c != AdvertisementCheck::kOk) {
        return c;
    }
    if (const auto c = check_side(ad.predecessors, false);
        c != AdvertisementCheck::kOk) {
        return c;
    }

    if (overlay::leaf_set_too_sparse(local_mean_spacing, ad.mean_spacing(),
                                     params.gamma)) {
        return AdvertisementCheck::kTooSparse;
    }
    return AdvertisementCheck::kOk;
    }();
    record_validation_outcome(result);
    return result;
}

}  // namespace concilium::core
