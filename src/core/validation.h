// Routing-state validation (Section 3.1).
//
// Before a peer's advertised jump table is trusted -- and Concilium's whole
// blame pipeline keys off knowing the next hops a forwarder will use -- the
// advertisement must pass:
//   1. the owner's signature,
//   2. per-entry structural constraints (the entry belongs in its slot),
//   3. per-entry freshness (each referenced peer's signed timestamp is
//      recent; defeats inflation with identifiers of departed nodes),
//   4. the occupancy density test (gamma * d_peer >= d_local; defeats
//      suppression of honest entries).

#pragma once

#include <functional>
#include <optional>

#include "crypto/keys.h"
#include "overlay/advertisement.h"
#include "overlay/density.h"
#include "util/ids.h"
#include "util/time.h"

namespace concilium::core {

enum class AdvertisementCheck {
    kOk,
    kBadOwnerSignature,
    kMalformedEntry,        ///< slot indices out of range or duplicated
    kConstraintViolation,   ///< entry id does not belong in its slot
    kBadEntryTimestamp,     ///< freshness timestamp missing/forged
    kStaleEntry,            ///< freshness timestamp too old
    kTooSparse,             ///< fails the density test
};

const char* to_string(AdvertisementCheck check);

struct ValidationParams {
    util::OverlayGeometry geometry{.digits = 32};
    /// Density-test threshold; Section 4.1 chooses it from the analytic
    /// error model.
    double gamma = 1.5;
    /// Availability probes run at least once a minute or two; anything much
    /// older than a probe period plus dissemination slack is stale.
    util::SimTime max_entry_age = 5 * util::kMinute;
};

/// Full validation pipeline for one advertisement, judged against the local
/// node's own table density.  `key_of` resolves identifiers to certified
/// public keys (from the CA's certificates).
AdvertisementCheck validate_advertisement(
    const overlay::JumpTableAdvertisement& ad, double local_density,
    util::SimTime now, const ValidationParams& params,
    const std::function<std::optional<crypto::PublicKey>(const util::NodeId&)>&
        key_of,
    const crypto::KeyRegistry& registry);

/// Castro's leaf-set pipeline (Section 2 / 3.1): owner signature, per-entry
/// freshness, ring-ordering sanity (successors strictly clockwise-ordered,
/// predecessors strictly counter-clockwise-ordered, owner excluded), and the
/// spacing density test against the local leaf set's mean spacing.
AdvertisementCheck validate_leaf_advertisement(
    const overlay::LeafSetAdvertisement& ad, double local_mean_spacing,
    util::SimTime now, const ValidationParams& params,
    const std::function<std::optional<crypto::PublicKey>(const util::NodeId&)>&
        key_of,
    const crypto::KeyRegistry& registry);

}  // namespace concilium::core
