#include "core/bandwidth.h"

#include "overlay/advertisement.h"
#include "util/metrics.h"

namespace concilium::core {

double BandwidthModel::expected_jump_entries(double n) const {
    static auto& evals =
        util::metrics::Registry::global().counter("core.bandwidth_evaluations");
    evals.add(1);
    return overlay::occupancy_model(n, geometry_).mean_count();
}

double BandwidthModel::expected_routing_peers(double n) const {
    return expected_jump_entries(n) + static_cast<double>(leaf_count_);
}

double BandwidthModel::advertisement_bytes(double n) const {
    const double peers = expected_routing_peers(n);
    return peers *
           (static_cast<double>(overlay::AdvertisedEntry::kWireBytes) + 1.0);
}

double BandwidthModel::heavyweight_probe_bytes(
    double leaves, const HeavyweightProbeCost& cost) {
    const double pairs = leaves * (leaves - 1.0) / 2.0;
    return pairs * cost.stripes_per_pair * cost.probes_per_stripe *
           cost.probe_bytes;
}

}  // namespace concilium::core
