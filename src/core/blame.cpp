#include "core/blame.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "util/metrics.h"

namespace concilium::core {

double probe_vote(bool link_up, double probe_accuracy) {
    return link_up ? (1.0 - probe_accuracy) : probe_accuracy;
}

BlameBreakdown compute_blame(std::span<const net::LinkId> path_links,
                             std::span<const ProbeResult> probes,
                             util::SimTime message_time,
                             const util::NodeId& judged,
                             const BlameParams& params) {
    if (params.probe_accuracy < 0.5 || params.probe_accuracy > 1.0) {
        throw std::invalid_argument(
            "compute_blame: probe accuracy must lie in [0.5, 1]");
    }
    const util::SimTime lo = message_time - params.delta;
    const util::SimTime hi = message_time + params.delta;

    // Accumulate votes per path link.
    struct Tally {
        double vote_sum = 0.0;
        int count = 0;
    };
    std::unordered_map<net::LinkId, Tally> tallies;
    tallies.reserve(path_links.size());
    for (const net::LinkId l : path_links) tallies.emplace(l, Tally{});

    for (const ProbeResult& p : probes) {
        if (p.at < lo || p.at > hi) continue;
        if (p.reporter == judged) continue;  // the self-probe exclusion
        const auto it = tallies.find(p.link);
        if (it == tallies.end()) continue;  // probe of an off-path link
        it->second.vote_sum += probe_vote(p.link_up, params.probe_accuracy);
        ++it->second.count;
    }

    BlameBreakdown out;
    double agg = 0.0;
    int probed_links = 0;
    // Iterate path order (not hash order) so breakdowns are deterministic.
    std::vector<net::LinkId> seen;
    for (const net::LinkId l : path_links) {
        if (std::find(seen.begin(), seen.end(), l) != seen.end()) continue;
        seen.push_back(l);
        const Tally& tally = tallies.at(l);
        if (tally.count == 0) continue;
        const double confidence =
            tally.vote_sum / static_cast<double>(tally.count);
        out.links.push_back(LinkConfidence{l, confidence, tally.count});
        ++probed_links;
        switch (params.or_operator) {
            case BlameParams::OrOperator::kMax:
                agg = std::max(agg, confidence);
                break;
            case BlameParams::OrOperator::kMean:
                agg += confidence;
                break;
        }
    }
    if (params.or_operator == BlameParams::OrOperator::kMean &&
        probed_links > 0) {
        agg /= static_cast<double>(probed_links);
    }
    out.path_bad_confidence = agg;
    out.blame = 1.0 - agg;

    {
        using util::metrics::Registry;
        static auto& evals = Registry::global().counter("core.blame_evaluations");
        static auto& admitted =
            Registry::global().counter("core.blame_probes_admitted");
        static auto& score =
            Registry::global().histogram("core.blame_score", 0.0, 1.0, 20);
        evals.add(1);
        std::int64_t admitted_count = 0;
        for (const LinkConfidence& lc : out.links) admitted_count += lc.probes_used;
        admitted.add(admitted_count);
        score.observe(out.blame);
    }
    return out;
}

}  // namespace concilium::core
