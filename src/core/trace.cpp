#include "core/trace.h"

#include <stdexcept>
#include <utility>

#include "util/json.h"
#include "util/metrics.h"

namespace concilium::core {

const char* to_string(DiagnosisRecord::Verdict verdict) {
    switch (verdict) {
        case DiagnosisRecord::Verdict::kUnjudged: return "unjudged";
        case DiagnosisRecord::Verdict::kNetworkBlamed: return "network";
        case DiagnosisRecord::Verdict::kNodeBlamed: return "node";
        case DiagnosisRecord::Verdict::kInsufficientEvidence:
            return "insufficient";
    }
    return "?";
}

namespace {

std::string judgment_json(const TraceJudgment& j) {
    using util::json_number;
    using util::json_quote;
    std::string out = "{\"judge\": " + json_quote(j.judge.to_hex()) +
                      ", \"suspect\": " + json_quote(j.suspect.to_hex()) +
                      ", \"judged_at\": " +
                      json_number(util::to_seconds(j.judged_at)) +
                      ", \"revision\": " + (j.revision ? "true" : "false") +
                      ", \"guilty\": " + (j.guilty ? "true" : "false") +
                      ", \"blame\": " + json_number(j.breakdown.blame) +
                      ", \"path_bad_confidence\": " +
                      json_number(j.breakdown.path_bad_confidence) +
                      ", \"path_links\": [";
    for (std::size_t i = 0; i < j.path_links.size(); ++i) {
        if (i > 0) out += ", ";
        out += json_number(static_cast<std::int64_t>(j.path_links[i]));
    }
    out += "], \"links\": [";
    for (std::size_t i = 0; i < j.breakdown.links.size(); ++i) {
        const LinkConfidence& lc = j.breakdown.links[i];
        if (i > 0) out += ", ";
        out += "{\"link\": " +
               json_number(static_cast<std::int64_t>(lc.link)) +
               ", \"bad_confidence\": " + json_number(lc.bad_confidence) +
               ", \"probes_used\": " +
               json_number(static_cast<std::int64_t>(lc.probes_used)) + "}";
    }
    out += "]}";
    return out;
}

}  // namespace

std::string DiagnosisRecord::to_json() const {
    using util::json_number;
    using util::json_quote;
    std::string out =
        "{\"message_id\": " + json_number(message_id) +
        ", \"sent_at\": " + json_number(util::to_seconds(sent_at)) +
        ", \"completed_at\": " + json_number(util::to_seconds(completed_at)) +
        ", \"verdict\": " + json_quote(to_string(verdict)) + ", \"blamed\": ";
    out += blamed.has_value() ? json_quote(blamed->to_hex()) : "null";
    out += ", \"forwarder_chain\": [";
    for (std::size_t i = 0; i < forwarder_chain.size(); ++i) {
        if (i > 0) out += ", ";
        out += json_quote(forwarder_chain[i].to_hex());
    }
    out += "], \"judgments\": [";
    for (std::size_t i = 0; i < judgments.size(); ++i) {
        if (i > 0) out += ", ";
        out += judgment_json(judgments[i]);
    }
    out += "]}";
    return out;
}

DiagnosisTrace::DiagnosisTrace(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) {
        throw std::invalid_argument("DiagnosisTrace: capacity must be >= 1");
    }
}

void DiagnosisTrace::record(DiagnosisRecord rec) {
    static auto& recorded =
        util::metrics::Registry::global().counter("runtime.trace_records");
    recorded.add(1);
    const std::lock_guard lock(mutex_);
    ++total_;
    ring_.push_back(std::move(rec));
    while (ring_.size() > capacity_) ring_.pop_front();
}

std::size_t DiagnosisTrace::size() const {
    const std::lock_guard lock(mutex_);
    return ring_.size();
}

std::uint64_t DiagnosisTrace::total_recorded() const {
    const std::lock_guard lock(mutex_);
    return total_;
}

std::vector<DiagnosisRecord> DiagnosisTrace::records() const {
    const std::lock_guard lock(mutex_);
    return {ring_.begin(), ring_.end()};
}

std::string DiagnosisTrace::records_json() const {
    const std::lock_guard lock(mutex_);
    std::string out = "[";
    for (std::size_t i = 0; i < ring_.size(); ++i) {
        out += (i == 0) ? "\n" : ",\n";
        out += ring_[i].to_json();
    }
    out += ring_.empty() ? "]" : "\n]";
    return out;
}

std::string DiagnosisTrace::to_json() const {
    std::string out = "{\"total_recorded\": ";
    out += util::json_number(total_recorded());
    out += ", \"records\": ";
    out += records_json();
    out += "}\n";
    return out;
}

void DiagnosisTrace::clear() {
    const std::lock_guard lock(mutex_);
    ring_.clear();
}

}  // namespace concilium::core
