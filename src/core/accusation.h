// Formal fault accusations and their recursive revision (Sections 3.4-3.5).
//
// An accusation is *self-verifying*: it bundles the forwarding commitment
// (proof the suspect agreed to forward the message), the signed tomographic
// snapshots the judge consulted, and the resulting blame value.  Any third
// party can re-run Equations 2-3 over the bundled evidence and reach the
// same verdict.
//
// Blame can land on an innocent forwarder when the true culprit sits further
// downstream; recursive stewardship lets each forwarder issue its own
// judgment against *its* next hop, and these are pushed upstream as
// revisions: "an amended accusation contains the signed, timestamped data
// from both the original verdict and the revision that was pushed upstream.
// This allows amended verdicts to be self-verifying."

#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "core/blame.h"
#include "core/commitments.h"
#include "core/verdicts.h"
#include "crypto/keys.h"
#include "tomography/snapshot.h"
#include "util/ids.h"

namespace concilium::core {

/// One judge's complete, independently checkable case against one suspect:
/// "suspect agreed to forward message_id and the IP path from it to its next
/// hop was good at message_time".
struct BlameEvidence {
    util::NodeId judge;
    util::NodeId suspect;
    std::uint64_t message_id = 0;
    util::SimTime message_time = 0;
    /// IP links of the path from the suspect to its next overlay hop,
    /// derived from the suspect's validated routing advertisement.
    std::vector<net::LinkId> path_links;
    /// The signed snapshots consulted (the suspect's own snapshots carry no
    /// weight; compute_blame excludes them regardless).
    std::vector<tomography::TomographicSnapshot> snapshots;
    /// The suspect's signed agreement to forward this message.
    ForwardingCommitment commitment;
    double claimed_blame = 0.0;
    crypto::Signature judge_signature;

    [[nodiscard]] std::vector<std::uint8_t> signed_payload() const;
};

/// Flattens snapshots into the per-link probe votes Equations 2-3 consume.
std::vector<ProbeResult> probes_from_snapshots(
    std::span<const tomography::TomographicSnapshot> snapshots);

struct FaultAccusation {
    util::NodeId accuser;
    /// evidence[0] is the accuser's original judgment; each later element is
    /// a revision pushed upstream (its judge is the previous suspect).
    std::vector<BlameEvidence> evidence;
    crypto::Signature signature;  ///< by the accuser, over the whole chain

    /// The node currently blamed: the last link of the revision chain.
    [[nodiscard]] const util::NodeId& accused() const;
    /// The accuser's original target (the first hop it judged).
    [[nodiscard]] const util::NodeId& original_accused() const;

    [[nodiscard]] std::vector<std::uint8_t> signed_payload() const;
    [[nodiscard]] std::vector<std::uint8_t> serialize() const;
    static FaultAccusation deserialize(std::span<const std::uint8_t> bytes);

    /// The DHT insertion key: derived from the accused node's public key
    /// ("The insertion key for the accusation is B's public key").
    static util::NodeId dht_key(const crypto::PublicKey& accused_key);
};

/// Appends a revision to an accusation, retargeting the blame at the next
/// downstream suspect, and re-signs the chain with the (new) accuser's keys.
/// Throws std::invalid_argument when the revision's judge is not the current
/// accused node.
void amend_accusation(FaultAccusation& accusation, BlameEvidence revision,
                      const crypto::KeyPair& accuser_keys);

enum class AccusationCheck {
    kOk,
    kEmptyEvidence,
    kBadAccuserSignature,
    kBrokenChain,       ///< revision judges do not chain through suspects
    kBadJudgeSignature,
    kBadCommitment,     ///< missing/forged/mismatched forwarding commitment
    kBadSnapshotSignature,
    kBlameMismatch,     ///< claimed blame does not reproduce from evidence
    kBlameBelowThreshold,
    kBadPath,           ///< claimed IP path contradicts the routing state
    kStaleEvidence,     ///< bundled snapshot outside the admission window
    kInsufficientEvidence,  ///< no admissible probe covers the claimed path
};

const char* to_string(AccusationCheck check);

/// Third-party verification context ("the host uses the associated
/// tomographic data to independently verify the fault calculations").
class AccusationVerifier {
  public:
    using KeyOfFn =
        std::function<std::optional<crypto::PublicKey>(const util::NodeId&)>;
    /// Checks that the claimed IP path for (judge -> suspect's next hop) is
    /// consistent with the verifier's own link map / the suspect's validated
    /// routing advertisement.  An accuser that lies about the path could
    /// otherwise cite probes of unrelated (healthy) links.
    using PathCheckFn = std::function<bool(
        const util::NodeId& judge, const util::NodeId& suspect,
        std::span<const net::LinkId> path_links)>;

    AccusationVerifier(const crypto::KeyRegistry& registry, KeyOfFn key_of,
                       BlameParams blame_params, VerdictParams verdict_params,
                       PathCheckFn path_check = {})
        : registry_(&registry), key_of_(std::move(key_of)),
          blame_params_(blame_params), verdict_params_(verdict_params),
          path_check_(std::move(path_check)) {}

    [[nodiscard]] AccusationCheck verify(
        const FaultAccusation& accusation) const;

    /// Checks a single evidence element in isolation (signatures, the
    /// commitment's message binding and timing, snapshot freshness, and the
    /// Equation 2-3 recomputation).  Public so a steward can vet a pushed
    /// revision before honoring it: kOk = verified guilty verdict,
    /// kBlameBelowThreshold = verified exoneration (the path really was
    /// bad), anything else = fabricated and must be ignored.
    [[nodiscard]] AccusationCheck verify_evidence(
        const BlameEvidence& ev) const;

  private:
    const crypto::KeyRegistry* registry_;
    KeyOfFn key_of_;
    BlameParams blame_params_;
    VerdictParams verdict_params_;
    PathCheckFn path_check_;
};

}  // namespace concilium::core
