#include "net/event_sim.h"

#include <utility>

#include "util/metrics.h"

namespace concilium::net {

namespace {

util::metrics::Counter& events_scheduled() {
    static auto& c =
        util::metrics::Registry::global().counter("net.events_scheduled");
    return c;
}

util::metrics::Counter& events_executed() {
    static auto& c =
        util::metrics::Registry::global().counter("net.events_executed");
    return c;
}

util::metrics::Gauge& queue_depth_max() {
    static auto& g =
        util::metrics::Registry::global().gauge("net.queue_depth_max");
    return g;
}

}  // namespace

void EventSim::schedule_at(util::SimTime t, Callback fn) {
    queue_.push(Event{t < now_ ? now_ : t, seq_++, std::move(fn)});
    events_scheduled().add(1);
    queue_depth_max().set_max(static_cast<double>(queue_.size()));
}

void EventSim::schedule_after(util::SimTime delay, Callback fn) {
    schedule_at(now_ + delay, std::move(fn));
}

bool EventSim::step() {
    if (queue_.empty()) return false;
    // Move the callback out before popping; the callback may schedule more
    // events (which reallocates the queue's storage).
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ev.fn();
    events_executed().add(1);
    return true;
}

void EventSim::run_until(util::SimTime t) {
    while (!queue_.empty() && queue_.top().at <= t) {
        step();
    }
    if (now_ < t) now_ = t;
}

void EventSim::run_all() {
    while (step()) {
    }
}

}  // namespace concilium::net
