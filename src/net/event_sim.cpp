#include "net/event_sim.h"

#include <utility>

namespace concilium::net {

void EventSim::schedule_at(util::SimTime t, Callback fn) {
    queue_.push(Event{t < now_ ? now_ : t, seq_++, std::move(fn)});
}

void EventSim::schedule_after(util::SimTime delay, Callback fn) {
    schedule_at(now_ + delay, std::move(fn));
}

bool EventSim::step() {
    if (queue_.empty()) return false;
    // Move the callback out before popping; the callback may schedule more
    // events (which reallocates the queue's storage).
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.at;
    ev.fn();
    return true;
}

void EventSim::run_until(util::SimTime t) {
    while (!queue_.empty() && queue_.top().at <= t) {
        step();
    }
    if (now_ < t) now_ = t;
}

void EventSim::run_all() {
    while (step()) {
    }
}

}  // namespace concilium::net
