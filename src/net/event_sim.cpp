#include "net/event_sim.h"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

#include "util/metrics.h"

namespace concilium::net {

namespace {

constexpr util::SimTime kNoHorizon = std::numeric_limits<util::SimTime>::max();

util::metrics::Counter& events_scheduled() {
    static auto& c =
        util::metrics::Registry::global().counter("net.events_scheduled");
    return c;
}

util::metrics::Counter& events_executed() {
    static auto& c =
        util::metrics::Registry::global().counter("net.events_executed");
    return c;
}

util::metrics::Gauge& queue_depth_max() {
    static auto& g =
        util::metrics::Registry::global().gauge("net.queue_depth_max");
    return g;
}

// High-water marks use set_max (commutative), so the deterministic metrics
// section stays byte-identical across --jobs values.
util::metrics::Gauge& queue_high_water() {
    static auto& g = util::metrics::Registry::global().gauge(
        "net.eventsim.queue_high_water");
    return g;
}

util::metrics::Gauge& overflow_high_water() {
    static auto& g = util::metrics::Registry::global().gauge(
        "net.eventsim.overflow_high_water");
    return g;
}

// Per-sim-minute queue-depth high-water series (geometry matches the
// kWellKnownSeries catalogue).  Max mode commutes, so the exported windows
// are byte-identical across --jobs values like the gauges above.
util::metrics::SeriesMetric& queue_depth_by_minute() {
    static auto& s = util::metrics::Registry::global().series(
        "net.eventsim.queue_depth.by_minute", util::kMinute, 240,
        util::metrics::SeriesMetric::Mode::kMax);
    return s;
}

}  // namespace

EventSim::EventSim() {
    // HandlerId 0 is reserved for the legacy std::function path.
    handlers_.push_back(Handler{this, &EventSim::run_callback_slot});
}

EventSim::HandlerId EventSim::register_handler(void* ctx, HandlerFn fn) {
    if (handlers_.size() > std::numeric_limits<HandlerId>::max()) {
        throw std::length_error("EventSim: handler table full");
    }
    handlers_.push_back(Handler{ctx, fn});
    return static_cast<HandlerId>(handlers_.size() - 1);
}

void EventSim::insert(Record r) {
    if (pending() >= max_pending_) {
        throw std::length_error(
            "EventSim: pending events exceed max_pending "
            "(runaway scheduling?)");
    }
    if (r.at < wheel_end()) {
        auto& bucket = wheel_[(static_cast<std::uint64_t>(r.at) >> kWidthShift) &
                              kBucketMask];
        bucket.push_back(r);
        std::push_heap(bucket.begin(), bucket.end(), Later{});
        ++wheel_count_;
    } else {
        overflow_.push_back(r);
        std::push_heap(overflow_.begin(), overflow_.end(), Later{});
        overflow_high_water().set_max(static_cast<double>(overflow_.size()));
    }
    events_scheduled().add(1);
    const auto depth = static_cast<double>(pending());
    queue_depth_max().set_max(depth);
    queue_high_water().set_max(depth);
}

void EventSim::post_at(util::SimTime t, HandlerId handler, std::uint32_t a,
                       std::uint64_t b, std::uint64_t c) {
    insert(Record{t < now_ ? now_ : t, seq_++, b, c, a, handler});
}

void EventSim::post_after(util::SimTime delay, HandlerId handler,
                          std::uint32_t a, std::uint64_t b, std::uint64_t c) {
    post_at(now_ + delay, handler, a, b, c);
}

void EventSim::schedule_at(util::SimTime t, Callback fn) {
    std::uint32_t slot;
    if (free_slots_.empty()) {
        slot = static_cast<std::uint32_t>(callbacks_.size());
        callbacks_.push_back(std::move(fn));
    } else {
        slot = free_slots_.back();
        free_slots_.pop_back();
        callbacks_[slot] = std::move(fn);
    }
    post_at(t, HandlerId{0}, slot);
}

void EventSim::schedule_after(util::SimTime delay, Callback fn) {
    schedule_at(now_ + delay, std::move(fn));
}

void EventSim::run_callback_slot(void* ctx, std::uint32_t slot, std::uint64_t,
                                 std::uint64_t) {
    auto* self = static_cast<EventSim*>(ctx);
    // Move the callback out before invoking; the callback may schedule more
    // events (which may grow the slab).
    Callback fn = std::move(self->callbacks_[slot]);
    self->callbacks_[slot] = nullptr;
    self->free_slots_.push_back(slot);
    fn();
}

void EventSim::drain_overflow() {
    const util::SimTime end = wheel_end();
    while (!overflow_.empty() && overflow_.front().at < end) {
        std::pop_heap(overflow_.begin(), overflow_.end(), Later{});
        Record r = overflow_.back();
        overflow_.pop_back();
        auto& bucket = wheel_[(static_cast<std::uint64_t>(r.at) >> kWidthShift) &
                              kBucketMask];
        bucket.push_back(r);
        std::push_heap(bucket.begin(), bucket.end(), Later{});
        ++wheel_count_;
    }
}

void EventSim::advance_cursor_to(util::SimTime at) {
    const auto target = static_cast<std::uint64_t>(at) >> kWidthShift;
    if (target <= cur_slot_) return;
    cur_slot_ = target;
    drain_overflow();
}

bool EventSim::pop_next(util::SimTime horizon, Record& out) {
    if (pending() == 0) return false;
    for (;;) {
        auto& bucket = wheel_[cur_slot_ & kBucketMask];
        if (!bucket.empty()) {
            if (bucket.front().at > horizon) return false;
            std::pop_heap(bucket.begin(), bucket.end(), Later{});
            out = bucket.back();
            bucket.pop_back();
            --wheel_count_;
            return true;
        }
        if (wheel_count_ == 0) {
            // Whole wheel empty: the earliest remaining event is the
            // overflow top.  Jump straight to its bucket (or stop at the
            // horizon's) instead of stepping through empty laps.
            const util::SimTime at = overflow_.front().at;
            if (at > horizon) {
                advance_cursor_to(horizon);
                return false;
            }
            advance_cursor_to(at);
            continue;
        }
        // Advance one bucket; the cursor never passes the horizon's bucket,
        // so clamped future inserts cannot land behind it.
        const util::SimTime next_start =
            static_cast<util::SimTime>(cur_slot_ + 1) << kWidthShift;
        if (next_start > horizon) return false;
        ++cur_slot_;
        drain_overflow();
    }
}

void EventSim::dispatch(const Record& ev) {
    const Handler h = handlers_[ev.handler];
    h.fn(h.ctx, ev.a, ev.b, ev.c);
    events_executed().add(1);
    // Per-minute queue-depth high water: two compares per event; the shared
    // SeriesMetric is only touched when the clock leaves the window.
    if (now_ >= depth_window_end_) flush_depth_window();
    const auto depth = static_cast<std::int64_t>(pending());
    if (depth > depth_window_max_) depth_window_max_ = depth;
}

void EventSim::flush_depth_window() noexcept {
    if (depth_window_max_ > 0) {
        queue_depth_by_minute().observe(depth_window_start_,
                                        depth_window_max_);
        depth_window_max_ = 0;
    }
    depth_window_start_ = now_ - now_ % util::kMinute;
    depth_window_end_ = depth_window_start_ + util::kMinute;
}

EventSim::~EventSim() {
    if (depth_window_max_ > 0) {
        queue_depth_by_minute().observe(depth_window_start_,
                                        depth_window_max_);
    }
}

bool EventSim::step() {
    Record ev;
    if (!pop_next(kNoHorizon, ev)) return false;
    now_ = ev.at;
    dispatch(ev);
    return true;
}

void EventSim::run_until(util::SimTime t) {
    Record ev;
    while (pop_next(t, ev)) {
        now_ = ev.at;
        dispatch(ev);
    }
    if (now_ < t) now_ = t;
}

void EventSim::run_all() {
    while (step()) {
    }
}

}  // namespace concilium::net
