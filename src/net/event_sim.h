// Discrete-event simulator.
//
// "we used a discrete event network simulator.  The simulator modeled link
// failure, tomographic probing, the collaborative dissemination of probe
// results, and three types of message events (message sent, message
// acknowledged, message not acknowledged)." (Section 4.2)
//
// EventSim is the shared clock and event queue those components hang off of.
// Events at equal times fire in scheduling order, so runs are deterministic.
//
// The queue is a time-bucketed calendar: 256 buckets of ~262 ms each cover a
// sliding ~67 s window; events beyond the window wait in an overflow heap and
// migrate into the wheel as the cursor advances.  Each bucket is a small
// binary heap ordered by (time, sequence), which preserves the global
// deterministic ordering while keeping per-operation cost near O(1) at
// full-SCAN queue depths.  Events are 40-byte POD records — a registered
// handler id plus three integer operands — so the hot path never allocates.
// The legacy std::function API remains for setup-time and test convenience;
// callbacks park in an internal slab and ride a reserved handler.
//
// Determinism contract: for any schedule of post/schedule calls, dispatch
// order is a pure function of the (time, sequence) pairs — bucket placement
// and overflow migration are invisible to observers.  Equal-time events fire
// in schedule order regardless of which side of the wheel horizon they were
// inserted on.

#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "util/time.h"

namespace concilium::net {

class EventSim {
  public:
    using Callback = std::function<void()>;

    /// Dispatch target registered by a component: a plain function pointer
    /// plus its context.  Operands a/b/c carry the event's payload (indices,
    /// ids, times) so records stay POD.
    using HandlerFn = void (*)(void* ctx, std::uint32_t a, std::uint64_t b,
                               std::uint64_t c);
    using HandlerId = std::uint16_t;

    /// Safety valve: a scheduling bug that grows the queue without bound
    /// fails loudly (std::length_error) instead of OOMing a --full run.
    static constexpr std::size_t kDefaultMaxPending = std::size_t{1} << 26;

    EventSim();
    ~EventSim();  // flushes the open queue-depth window to the series

    [[nodiscard]] util::SimTime now() const noexcept { return now_; }

    /// Registers a dispatch target; call once per component at setup.
    HandlerId register_handler(void* ctx, HandlerFn fn);

    /// Schedules a POD event for `handler` at absolute time t (>= now, else
    /// it fires immediately at the current time).  Never allocates once the
    /// target bucket has warmed up.
    void post_at(util::SimTime t, HandlerId handler, std::uint32_t a = 0,
                 std::uint64_t b = 0, std::uint64_t c = 0);

    /// Schedules a POD event at now() + delay.
    void post_after(util::SimTime delay, HandlerId handler, std::uint32_t a = 0,
                    std::uint64_t b = 0, std::uint64_t c = 0);

    /// Schedules fn at absolute time t (>= now, else it fires immediately at
    /// the current time).
    void schedule_at(util::SimTime t, Callback fn);

    /// Schedules fn at now() + delay.
    void schedule_after(util::SimTime delay, Callback fn);

    /// Runs events with time <= t, then advances the clock to t.
    void run_until(util::SimTime t);

    /// Runs until the queue is empty.
    void run_all();

    /// Fires the next event; returns false when the queue is empty.
    bool step();

    [[nodiscard]] std::size_t pending() const noexcept {
        return wheel_count_ + overflow_.size();
    }
    [[nodiscard]] bool empty() const noexcept { return pending() == 0; }

    /// Adjusts the runaway-queue valve (see kDefaultMaxPending).
    void set_max_pending(std::size_t cap) noexcept { max_pending_ = cap; }
    [[nodiscard]] std::size_t max_pending() const noexcept {
        return max_pending_;
    }

  private:
    // 256 buckets x 2^18 us: ~262 ms per bucket, ~67 s wheel span.  Control
    // latencies and probe intervals in the modelled protocol are
    // milliseconds to tens of seconds, so nearly all events land in the
    // wheel; multi-minute timers wait in the overflow heap.
    static constexpr int kBucketBits = 8;
    static constexpr std::size_t kBuckets = std::size_t{1} << kBucketBits;
    static constexpr std::size_t kBucketMask = kBuckets - 1;
    static constexpr int kWidthShift = 18;
    static constexpr util::SimTime kBucketWidth = util::SimTime{1}
                                                  << kWidthShift;

    struct Record {
        util::SimTime at;
        std::uint64_t seq;
        std::uint64_t b;
        std::uint64_t c;
        std::uint32_t a;
        HandlerId handler;
    };
    /// "Fires later" comparator; std::*_heap with it yields a min-heap on
    /// (at, seq).
    struct Later {
        bool operator()(const Record& x, const Record& y) const noexcept {
            if (x.at != y.at) return x.at > y.at;
            return x.seq > y.seq;
        }
    };

    struct Handler {
        void* ctx = nullptr;
        HandlerFn fn = nullptr;
    };

    [[nodiscard]] util::SimTime wheel_end() const noexcept {
        return static_cast<util::SimTime>((cur_slot_ + kBuckets))
               << kWidthShift;
    }

    void insert(Record r);
    /// Pops the earliest event if its time is <= horizon.  May advance the
    /// cursor, but never past the horizon's bucket, so later inserts (which
    /// are clamped to >= now) always map at or ahead of the cursor.
    bool pop_next(util::SimTime horizon, Record& out);
    /// Moves the cursor to at's bucket (forward only) and migrates overflow
    /// events that entered the wheel window.
    void advance_cursor_to(util::SimTime at);
    /// Migrates overflow events with at < wheel_end() into the wheel.
    void drain_overflow();
    void dispatch(const Record& ev);
    /// Publishes the finished per-minute queue-depth maximum and opens the
    /// window containing now_.  Off the per-event path: dispatch() only
    /// compares against depth_window_end_.
    void flush_depth_window() noexcept;

    static void run_callback_slot(void* ctx, std::uint32_t slot, std::uint64_t,
                                  std::uint64_t);

    std::array<std::vector<Record>, kBuckets> wheel_;  // per-bucket min-heaps
    std::vector<Record> overflow_;                     // min-heap, at >= wheel_end
    std::size_t wheel_count_ = 0;
    std::uint64_t cur_slot_ = 0;  // monotonic bucket number (time >> shift)

    std::vector<Handler> handlers_;
    std::vector<Callback> callbacks_;        // slab for the legacy API
    std::vector<std::uint32_t> free_slots_;  // recycled slab entries

    util::SimTime now_ = 0;
    std::uint64_t seq_ = 0;
    std::size_t max_pending_ = kDefaultMaxPending;

    // Queue-depth high-water accumulation for the per-minute series.  The
    // running maximum stays in these plain members (no atomics on the
    // dispatch path) until the sim clock leaves the window.
    util::SimTime depth_window_start_ = 0;
    util::SimTime depth_window_end_ = 0;  // 0: first dispatch opens a window
    std::int64_t depth_window_max_ = 0;
};

}  // namespace concilium::net
