// Discrete-event simulator.
//
// "we used a discrete event network simulator.  The simulator modeled link
// failure, tomographic probing, the collaborative dissemination of probe
// results, and three types of message events (message sent, message
// acknowledged, message not acknowledged)." (Section 4.2)
//
// EventSim is the shared clock and event queue those components hang off of.
// Events at equal times fire in scheduling order, so runs are deterministic.

#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/time.h"

namespace concilium::net {

class EventSim {
  public:
    using Callback = std::function<void()>;

    [[nodiscard]] util::SimTime now() const noexcept { return now_; }

    /// Schedules fn at absolute time t (>= now, else it fires immediately at
    /// the current time).
    void schedule_at(util::SimTime t, Callback fn);

    /// Schedules fn at now() + delay.
    void schedule_after(util::SimTime delay, Callback fn);

    /// Runs events with time <= t, then advances the clock to t.
    void run_until(util::SimTime t);

    /// Runs until the queue is empty.
    void run_all();

    /// Fires the next event; returns false when the queue is empty.
    bool step();

    [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
    [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }

  private:
    struct Event {
        util::SimTime at;
        std::uint64_t seq;
        Callback fn;
    };
    struct Later {
        bool operator()(const Event& a, const Event& b) const noexcept {
            if (a.at != b.at) return a.at > b.at;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> queue_;
    util::SimTime now_ = 0;
    std::uint64_t seq_ = 0;
};

}  // namespace concilium::net
