// Packet transport over the simulated IP network.
//
// A packet sent along a path is dropped when any traversed link is down at
// the moment of crossing, or (with a small configurable probability per link)
// by residual loss on healthy links.  Latency is a fixed per-hop cost --
// the Concilium evaluation depends on loss and ordering, not on queueing
// dynamics.

#pragma once

#include <functional>
#include <span>

#include "net/chaos.h"
#include "net/event_sim.h"
#include "net/link_state.h"
#include "net/paths.h"
#include "util/rng.h"

namespace concilium::net {

struct TransportParams {
    util::SimTime per_hop_latency = 2 * util::kMillisecond;
    double healthy_link_loss = 0.0;  ///< residual loss on an up link
};

class Transport {
  public:
    Transport(const FailureTimeline& timeline, EventSim& sim,
              util::Rng rng, TransportParams params = {})
        : timeline_(&timeline), sim_(&sim), rng_(rng), params_(params) {}

    /// Probability that one packet crossing `link` at time t survives.
    [[nodiscard]] double pass_probability(LinkId link, util::SimTime t) const;

    /// Samples a single packet traversal of `path` starting at time t.
    /// Each link is crossed per_hop_latency later than the previous one.
    /// Returns true when the packet reaches the end of the path.
    bool sample_traversal(const Path& path, util::SimTime t);
    bool sample_traversal(std::span<const LinkId> links, util::SimTime t);

    [[nodiscard]] util::SimTime latency(std::size_t hops) const noexcept {
        return static_cast<util::SimTime>(hops) * params_.per_hop_latency;
    }
    [[nodiscard]] util::SimTime latency(const Path& path) const noexcept {
        return latency(path.hops());
    }

    /// Sends a packet now; exactly one of on_deliver / on_drop fires, at the
    /// simulated arrival (or would-be arrival) time.
    void send(const Path& path, std::function<void()> on_deliver,
              std::function<void()> on_drop);

    [[nodiscard]] const TransportParams& params() const noexcept {
        return params_;
    }

    /// Attaches a chaos plan: flap / correlated-outage intervals and loss
    /// spikes fold into pass_probability, so every packet -- probes and
    /// application traffic alike -- sees the injected faults.  The plan
    /// must outlive the transport; pass nullptr to detach.
    void set_chaos(const FaultPlan* plan) noexcept { chaos_ = plan; }
    [[nodiscard]] const FaultPlan* chaos() const noexcept { return chaos_; }

  private:
    const FailureTimeline* timeline_;
    EventSim* sim_;
    util::Rng rng_;
    TransportParams params_;
    const FaultPlan* chaos_ = nullptr;
};

}  // namespace concilium::net
