#include "net/topology_gen.h"

#include <algorithm>
#include <stdexcept>
#include <vector>

namespace concilium::net {

namespace {

/// Adds a link unless it already exists (chord generation may collide).
bool add_link_if_new(Topology& topo, RouterId a, RouterId b) {
    if (a == b) return false;
    if (topo.find_link(a, b) != kInvalidLink) return false;
    topo.add_link(a, b);
    return true;
}

}  // namespace

TopologyParams scan_like_params() {
    TopologyParams p;
    p.transit_domains = 20;
    p.routers_per_transit = 30;
    p.stub_domains = 2500;
    p.routers_per_stub = 30;
    p.end_hosts = 37400;
    p.transit_chord_fraction = 0.5;
    p.stub_chord_fraction = 0.9;
    p.dual_home_probability = 0.3;
    p.inter_domain_links = 20;
    return p;
}

TopologyParams medium_params() {
    TopologyParams p;
    p.transit_domains = 8;
    p.routers_per_transit = 16;
    p.stub_domains = 320;
    p.routers_per_stub = 28;
    p.end_hosts = 4700;
    p.transit_chord_fraction = 0.5;
    p.stub_chord_fraction = 0.9;
    p.dual_home_probability = 0.3;
    p.inter_domain_links = 8;
    return p;
}

TopologyParams small_params() {
    TopologyParams p;
    p.transit_domains = 2;
    p.routers_per_transit = 5;
    p.stub_domains = 12;
    p.routers_per_stub = 6;
    p.end_hosts = 120;
    p.transit_chord_fraction = 0.5;
    p.stub_chord_fraction = 0.7;
    p.dual_home_probability = 0.3;
    p.inter_domain_links = 2;
    return p;
}

Topology generate_topology(const TopologyParams& params, util::Rng& rng) {
    if (params.transit_domains < 1 || params.routers_per_transit < 2 ||
        params.stub_domains < 1 || params.routers_per_stub < 1 ||
        params.end_hosts < 0) {
        throw std::invalid_argument("generate_topology: degenerate parameters");
    }

    Topology topo;

    // --- Core: transit domains, each a ring plus random chords. ---
    std::vector<std::vector<RouterId>> domains(
        static_cast<std::size_t>(params.transit_domains));
    for (auto& domain : domains) {
        domain.reserve(static_cast<std::size_t>(params.routers_per_transit));
        for (int i = 0; i < params.routers_per_transit; ++i) {
            domain.push_back(topo.add_router(RouterTier::kCore));
        }
        for (std::size_t i = 0; i < domain.size(); ++i) {
            add_link_if_new(topo, domain[i], domain[(i + 1) % domain.size()]);
        }
        const int chords = static_cast<int>(params.transit_chord_fraction *
                                            params.routers_per_transit);
        for (int i = 0; i < chords; ++i) {
            add_link_if_new(topo, rng.pick(domain), rng.pick(domain));
        }
    }

    // Interconnect the domains: a ring over domains guarantees connectivity,
    // extra random pairs add path diversity.
    for (std::size_t d = 0; d + 1 < domains.size(); ++d) {
        add_link_if_new(topo, rng.pick(domains[d]), rng.pick(domains[d + 1]));
    }
    if (domains.size() > 2) {
        add_link_if_new(topo, rng.pick(domains.back()), rng.pick(domains.front()));
    }
    for (int i = 0; i < params.inter_domain_links; ++i) {
        const auto& d1 = domains[rng.uniform_index(domains.size())];
        const auto& d2 = domains[rng.uniform_index(domains.size())];
        add_link_if_new(topo, rng.pick(d1), rng.pick(d2));
    }

    std::vector<RouterId> core;
    for (const auto& domain : domains) {
        core.insert(core.end(), domain.begin(), domain.end());
    }

    // --- Stub domains: random trees with chords, gateway(s) to the core. ---
    std::vector<RouterId> stub_routers;
    std::vector<DomainId> stub_router_domain;
    for (int s = 0; s < params.stub_domains; ++s) {
        const int lo = std::max(1, params.routers_per_stub / 2);
        const int hi = std::max(lo, params.routers_per_stub * 3 / 2);
        const int size = static_cast<int>(rng.uniform_int(lo, hi));
        std::vector<RouterId> stub;
        stub.reserve(static_cast<std::size_t>(size));
        for (int i = 0; i < size; ++i) {
            const RouterId r = topo.add_router(RouterTier::kStub,
                                               static_cast<DomainId>(s));
            if (i > 0) {
                // Random recursive tree keeps diameters small and degrees
                // skewed, like measured stub networks.
                add_link_if_new(topo, r, stub[rng.uniform_index(stub.size())]);
            }
            stub.push_back(r);
        }
        const int chords =
            static_cast<int>(params.stub_chord_fraction * static_cast<double>(size));
        for (int i = 0; i < chords; ++i) {
            add_link_if_new(topo, rng.pick(stub), rng.pick(stub));
        }
        add_link_if_new(topo, stub.front(), rng.pick(core));
        if (rng.bernoulli(params.dual_home_probability)) {
            add_link_if_new(topo, rng.pick(stub), rng.pick(core));
        }
        stub_routers.insert(stub_routers.end(), stub.begin(), stub.end());
        stub_router_domain.insert(stub_router_domain.end(), stub.size(),
                                  static_cast<DomainId>(s));
    }

    // --- End hosts: degree-1 leaves on random stub routers, inheriting
    // their router's domain. ---
    for (int i = 0; i < params.end_hosts; ++i) {
        const std::size_t pick = rng.uniform_index(stub_routers.size());
        const RouterId host =
            topo.add_router(RouterTier::kEndHost, stub_router_domain[pick]);
        topo.add_link(host, stub_routers[pick]);
    }

    return topo;
}

TopologyStats summarize(const Topology& topo) {
    TopologyStats stats;
    stats.routers = topo.router_count();
    stats.links = topo.link_count();
    std::size_t interior_degree_sum = 0;
    std::size_t interior = 0;
    for (RouterId r = 0; r < topo.router_count(); ++r) {
        switch (topo.tier(r)) {
            case RouterTier::kCore: ++stats.core_routers; break;
            case RouterTier::kStub: ++stats.stub_routers; break;
            case RouterTier::kEndHost: ++stats.end_hosts; break;
        }
        if (topo.tier(r) != RouterTier::kEndHost) {
            interior_degree_sum += topo.degree(r);
            ++interior;
        }
    }
    stats.link_router_ratio = stats.routers == 0
                                  ? 0.0
                                  : static_cast<double>(stats.links) /
                                        static_cast<double>(stats.routers);
    stats.mean_interior_degree =
        interior == 0 ? 0.0
                      : static_cast<double>(interior_degree_sum) /
                            static_cast<double>(interior);
    return stats;
}

}  // namespace concilium::net
