// Shortest-path extraction.
//
// The paper derives each host's IP-level link map with measurement tools like
// RocketFuel and notes that Internet routes are stable for a day or more
// (Section 3.2), so maps are computed rarely.  In the simulation the oracle
// extracts exact shortest paths from the topology (BFS over unweighted links
// with deterministic tie-breaking), playing the role of that stable map.

#pragma once

#include <span>
#include <vector>

#include "net/topology.h"

namespace concilium::net {

/// A route through the IP network.  routers.size() == links.size() + 1;
/// routers.front() is the source and routers.back() the destination.
struct Path {
    std::vector<RouterId> routers;
    std::vector<LinkId> links;

    [[nodiscard]] bool empty() const noexcept { return links.empty(); }
    [[nodiscard]] std::size_t hops() const noexcept { return links.size(); }
};

class PathOracle {
  public:
    explicit PathOracle(const Topology& topo) : topo_(&topo) {}

    /// Shortest path from src to dst.  Deterministic: ties break by
    /// adjacency-list order, which is fixed by construction order.
    /// Returns an empty path when dst is unreachable or src == dst.
    [[nodiscard]] Path path(RouterId src, RouterId dst) const;

    /// One BFS from src, extracting the paths to every destination.
    /// Unreachable destinations yield empty paths.
    [[nodiscard]] std::vector<Path> paths_from(
        RouterId src, std::span<const RouterId> dsts) const;

  private:
    /// Runs BFS from src; fills parent-link arrays sized to the topology.
    void bfs(RouterId src, std::vector<RouterId>& parent,
             std::vector<LinkId>& via) const;

    const Topology* topo_;
};

}  // namespace concilium::net
