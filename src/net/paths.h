// Shortest-path extraction.
//
// The paper derives each host's IP-level link map with measurement tools like
// RocketFuel and notes that Internet routes are stable for a day or more
// (Section 3.2), so maps are computed rarely.  In the simulation the oracle
// extracts exact shortest paths from the topology (BFS over unweighted links
// with deterministic tie-breaking), playing the role of that stable map.

#pragma once

#include <span>
#include <vector>

#include "net/topology.h"
#include "util/arena.h"

namespace concilium::net {

/// A route through the IP network.  routers.size() == links.size() + 1;
/// routers.front() is the source and routers.back() the destination.
struct Path {
    std::vector<RouterId> routers;
    std::vector<LinkId> links;

    [[nodiscard]] bool empty() const noexcept { return links.empty(); }
    [[nodiscard]] std::size_t hops() const noexcept { return links.size(); }
};

/// A route viewed as spans into arena storage (see PathOracle::paths_into).
/// Same shape contract as Path: routers.size() == links.size() + 1 for a
/// non-empty route, both empty when unreachable or src == dst.
struct PathView {
    std::span<const RouterId> routers;
    std::span<const LinkId> links;

    [[nodiscard]] bool empty() const noexcept { return links.empty(); }
    [[nodiscard]] std::size_t hops() const noexcept { return links.size(); }

    /// Owning copy, for the few cold consumers that outlive the arena.
    [[nodiscard]] Path to_path() const {
        return Path{{routers.begin(), routers.end()},
                    {links.begin(), links.end()}};
    }
};

class PathOracle {
  public:
    explicit PathOracle(const Topology& topo) : topo_(&topo) {}

    /// Shortest path from src to dst.  Deterministic: ties break by
    /// adjacency-list order, which is fixed by construction order.
    /// Returns an empty path when dst is unreachable or src == dst.
    [[nodiscard]] Path path(RouterId src, RouterId dst) const;

    /// One BFS from src, extracting the paths to every destination.
    /// Unreachable destinations yield empty paths.
    [[nodiscard]] std::vector<Path> paths_from(
        RouterId src, std::span<const RouterId> dsts) const;

    /// One BFS from src; every extracted path is carved out of `arena`
    /// (two pointer bumps per path, no per-path heap traffic) and returned
    /// as spans.  The spans stay valid until the arena is reset or
    /// destroyed.  At full-SCAN scale this is the difference between two
    /// heap allocations per (member, peer) pair and none.
    [[nodiscard]] std::vector<PathView> paths_into(
        RouterId src, std::span<const RouterId> dsts,
        util::Arena& arena) const;

  private:
    /// Runs BFS from src; fills parent-link arrays sized to the topology.
    void bfs(RouterId src, std::vector<RouterId>& parent,
             std::vector<LinkId>& via) const;

    const Topology* topo_;
};

}  // namespace concilium::net
