// Link-failure ground truth.
//
// Section 4.2's methodology: "5% of links were bad at any moment.  Average
// link downtime was 15 minutes with a standard deviation of 7.5 minutes ...
// Failures were biased towards links at the edge of the network.  To select a
// new link for failure, we randomly picked an overlay host and a random peer
// in that host's routing state.  We then used a beta distribution with
// alpha=0.9 and beta=0.6 to select the depth of the link that would fail."
//
// Failures do not depend on traffic, so the whole timeline is generated up
// front as a birth-death process and then queried: the simulator asks for the
// true state of a link at any instant, and the evaluation compares the
// tomographic view with this ground truth.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "net/paths.h"
#include "net/topology.h"
#include "util/rng.h"
#include "util/time.h"

namespace concilium::net {

struct DownInterval {
    util::SimTime start = 0;
    util::SimTime end = 0;  ///< exclusive

    [[nodiscard]] bool contains(util::SimTime t) const noexcept {
        return t >= start && t < end;
    }
};

/// Per-link ground-truth failure history.
class FailureTimeline {
  public:
    /// Records a down interval; call finalize() before querying.
    void add_down(LinkId link, DownInterval interval);

    /// Sorts and merges overlapping intervals.  Idempotent.
    void finalize();

    [[nodiscard]] bool is_up(LinkId link, util::SimTime t) const;

    /// True when at least one link in the span is down at t.
    [[nodiscard]] bool any_down(std::span<const LinkId> links,
                                util::SimTime t) const;

    /// Number of links that are down at t among `universe`.
    [[nodiscard]] std::size_t down_count(std::span<const LinkId> universe,
                                         util::SimTime t) const;

    /// Fraction of [t0, t1) during which the link was down.
    [[nodiscard]] double down_fraction(LinkId link, util::SimTime t0,
                                       util::SimTime t1) const;

    [[nodiscard]] const std::vector<DownInterval>& intervals(LinkId link) const;

  private:
    /// Dense by LinkId (link ids are compact topology indices); links with
    /// no recorded failure hold an empty vector.  The traversal sampler asks
    /// is_up for every link of every packet, so the query must be an indexed
    /// load, not a hash lookup.
    std::vector<std::vector<DownInterval>> down_;
    bool finalized_ = true;
};

struct FailureModelParams {
    double fraction_bad = 0.05;            ///< links concurrently down
    util::SimTime mean_downtime = 15 * util::kMinute;
    util::SimTime stddev_downtime = util::SimTime(7.5 * util::kMinute);
    double depth_beta_alpha = 0.9;         ///< beta distribution over path depth
    double depth_beta_beta = 0.6;
    util::SimTime min_downtime = 30 * util::kSecond;
};

/// Generates a failure timeline for [0, duration).
///
/// candidate_paths plays the role of "(overlay host, random routing peer)"
/// pairs: every injection picks one path uniformly, then a Beta(alpha, beta)
/// draw selects the failing link's position along that path (0 = the
/// picking host's edge, 1 = the peer's edge; the U-shaped Beta(0.9, 0.6)
/// puts most mass at the edges).  The injection rate is calibrated so that,
/// in steady state, `fraction_bad` of the links appearing in candidate_paths
/// are down; a warm-up period before t=0 reaches steady state by the start.
FailureTimeline generate_failure_timeline(
    const FailureModelParams& params, util::SimTime duration,
    std::span<const Path> candidate_paths, util::Rng& rng);

}  // namespace concilium::net
