#include "net/paths.h"

#include <algorithm>
#include <deque>

namespace concilium::net {

void PathOracle::bfs(RouterId src, std::vector<RouterId>& parent,
                     std::vector<LinkId>& via) const {
    parent.assign(topo_->router_count(), kInvalidRouter);
    via.assign(topo_->router_count(), kInvalidLink);
    parent[src] = src;
    std::deque<RouterId> queue{src};
    while (!queue.empty()) {
        const RouterId r = queue.front();
        queue.pop_front();
        for (const Topology::Edge& e : topo_->neighbors(r)) {
            if (parent[e.neighbor] == kInvalidRouter) {
                parent[e.neighbor] = r;
                via[e.neighbor] = e.link;
                queue.push_back(e.neighbor);
            }
        }
    }
}

namespace {

Path extract(RouterId src, RouterId dst, const std::vector<RouterId>& parent,
             const std::vector<LinkId>& via) {
    Path path;
    if (dst == src || parent[dst] == kInvalidRouter) return path;
    for (RouterId r = dst; r != src; r = parent[r]) {
        path.routers.push_back(r);
        path.links.push_back(via[r]);
    }
    path.routers.push_back(src);
    std::reverse(path.routers.begin(), path.routers.end());
    std::reverse(path.links.begin(), path.links.end());
    return path;
}

}  // namespace

Path PathOracle::path(RouterId src, RouterId dst) const {
    std::vector<RouterId> parent;
    std::vector<LinkId> via;
    bfs(src, parent, via);
    return extract(src, dst, parent, via);
}

std::vector<Path> PathOracle::paths_from(RouterId src,
                                         std::span<const RouterId> dsts) const {
    std::vector<RouterId> parent;
    std::vector<LinkId> via;
    bfs(src, parent, via);
    std::vector<Path> out;
    out.reserve(dsts.size());
    for (const RouterId dst : dsts) {
        out.push_back(extract(src, dst, parent, via));
    }
    return out;
}

std::vector<PathView> PathOracle::paths_into(RouterId src,
                                             std::span<const RouterId> dsts,
                                             util::Arena& arena) const {
    std::vector<RouterId> parent;
    std::vector<LinkId> via;
    bfs(src, parent, via);
    std::vector<PathView> out;
    out.reserve(dsts.size());
    for (const RouterId dst : dsts) {
        if (dst == src || parent[dst] == kInvalidRouter) {
            out.push_back(PathView{});
            continue;
        }
        std::size_t hops = 0;
        for (RouterId r = dst; r != src; r = parent[r]) ++hops;
        const auto routers = arena.make_span<RouterId>(hops + 1);
        const auto links = arena.make_span<LinkId>(hops);
        routers[0] = src;
        std::size_t i = hops;
        for (RouterId r = dst; r != src; r = parent[r], --i) {
            routers[i] = r;
            links[i - 1] = via[r];
        }
        out.push_back(PathView{routers, links});
    }
    return out;
}

}  // namespace concilium::net
