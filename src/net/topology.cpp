#include "net/topology.h"

#include <stdexcept>

namespace concilium::net {

RouterId Topology::add_router(RouterTier tier, DomainId domain) {
    tiers_.push_back(tier);
    domains_.push_back(domain);
    adjacency_.emplace_back();
    return static_cast<RouterId>(tiers_.size() - 1);
}

LinkId Topology::add_link(RouterId a, RouterId b) {
    if (a == b) {
        throw std::invalid_argument("Topology::add_link: self-loop");
    }
    if (a >= router_count() || b >= router_count()) {
        throw std::invalid_argument("Topology::add_link: unknown router");
    }
    if (find_link(a, b) != kInvalidLink) {
        throw std::invalid_argument("Topology::add_link: duplicate link");
    }
    const LinkId id = static_cast<LinkId>(links_.size());
    links_.push_back(Link{a, b});
    adjacency_[a].push_back(Edge{b, id});
    adjacency_[b].push_back(Edge{a, id});
    return id;
}

LinkId Topology::find_link(RouterId a, RouterId b) const {
    // Scan the lower-degree endpoint; adjacency lists at the edge are tiny.
    const RouterId probe = degree(a) <= degree(b) ? a : b;
    const RouterId target = probe == a ? b : a;
    for (const Edge& e : adjacency_.at(probe)) {
        if (e.neighbor == target) return e.link;
    }
    return kInvalidLink;
}

std::vector<RouterId> Topology::end_hosts() const {
    std::vector<RouterId> hosts;
    for (RouterId r = 0; r < router_count(); ++r) {
        if (adjacency_[r].size() == 1) hosts.push_back(r);
    }
    return hosts;
}

bool Topology::connected() const {
    if (router_count() == 0) return true;
    std::vector<bool> seen(router_count(), false);
    std::vector<RouterId> stack{0};
    seen[0] = true;
    std::size_t visited = 1;
    while (!stack.empty()) {
        const RouterId r = stack.back();
        stack.pop_back();
        for (const Edge& e : adjacency_[r]) {
            if (!seen[e.neighbor]) {
                seen[e.neighbor] = true;
                ++visited;
                stack.push_back(e.neighbor);
            }
        }
    }
    return visited == router_count();
}

}  // namespace concilium::net
