#include "net/link_state.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_set>

namespace concilium::net {

void FailureTimeline::add_down(LinkId link, DownInterval interval) {
    if (interval.end <= interval.start) return;
    if (link >= down_.size()) down_.resize(link + 1);
    down_[link].push_back(interval);
    finalized_ = false;
}

void FailureTimeline::finalize() {
    if (finalized_) return;
    for (auto& intervals : down_) {
        if (intervals.empty()) continue;
        std::sort(intervals.begin(), intervals.end(),
                  [](const DownInterval& a, const DownInterval& b) {
                      return a.start < b.start;
                  });
        std::vector<DownInterval> merged;
        for (const DownInterval& iv : intervals) {
            if (!merged.empty() && iv.start <= merged.back().end) {
                merged.back().end = std::max(merged.back().end, iv.end);
            } else {
                merged.push_back(iv);
            }
        }
        intervals = std::move(merged);
    }
    finalized_ = true;
}

namespace {

bool down_at(const std::vector<DownInterval>& intervals, util::SimTime t) {
    // First interval with start > t; the candidate is its predecessor.
    auto it = std::upper_bound(
        intervals.begin(), intervals.end(), t,
        [](util::SimTime v, const DownInterval& iv) { return v < iv.start; });
    if (it == intervals.begin()) return false;
    return std::prev(it)->contains(t);
}

}  // namespace

bool FailureTimeline::is_up(LinkId link, util::SimTime t) const {
    if (!finalized_) {
        throw std::logic_error("FailureTimeline: query before finalize()");
    }
    if (link >= down_.size() || down_[link].empty()) return true;
    return !down_at(down_[link], t);
}

bool FailureTimeline::any_down(std::span<const LinkId> links,
                               util::SimTime t) const {
    for (const LinkId l : links) {
        if (!is_up(l, t)) return true;
    }
    return false;
}

std::size_t FailureTimeline::down_count(std::span<const LinkId> universe,
                                        util::SimTime t) const {
    std::size_t n = 0;
    for (const LinkId l : universe) {
        if (!is_up(l, t)) ++n;
    }
    return n;
}

double FailureTimeline::down_fraction(LinkId link, util::SimTime t0,
                                      util::SimTime t1) const {
    if (!finalized_) {
        throw std::logic_error("FailureTimeline: query before finalize()");
    }
    if (t1 <= t0) return 0.0;
    if (link >= down_.size()) return 0.0;
    util::SimTime down = 0;
    for (const DownInterval& iv : down_[link]) {
        const util::SimTime lo = std::max(iv.start, t0);
        const util::SimTime hi = std::min(iv.end, t1);
        if (hi > lo) down += hi - lo;
    }
    return static_cast<double>(down) / static_cast<double>(t1 - t0);
}

const std::vector<DownInterval>& FailureTimeline::intervals(LinkId link) const {
    static const std::vector<DownInterval> kEmpty;
    return link >= down_.size() ? kEmpty : down_[link];
}

FailureTimeline generate_failure_timeline(const FailureModelParams& params,
                                          util::SimTime duration,
                                          std::span<const Path> candidate_paths,
                                          util::Rng& rng) {
    FailureTimeline timeline;
    std::vector<const Path*> nonempty;
    for (const Path& p : candidate_paths) {
        if (!p.empty()) nonempty.push_back(&p);
    }
    if (nonempty.empty()) {
        timeline.finalize();
        return timeline;
    }

    std::unordered_set<LinkId> universe;
    for (const Path* p : nonempty) {
        universe.insert(p->links.begin(), p->links.end());
    }

    // Birth-death steady state: concurrent_down = rate * mean_downtime.
    const double target_down =
        params.fraction_bad * static_cast<double>(universe.size());
    const double rate_per_us =
        target_down / static_cast<double>(params.mean_downtime);
    const double mean_gap_us = 1.0 / rate_per_us;

    // Warm up long enough that failures straddling t=0 are in steady state.
    const util::SimTime warmup = 4 * params.mean_downtime;
    double t = -static_cast<double>(warmup);
    const double horizon = static_cast<double>(duration);
    while (t < horizon) {
        t += rng.exponential(mean_gap_us);
        if (t >= horizon) break;
        const Path& path = *nonempty[rng.uniform_index(nonempty.size())];
        const double depth =
            rng.beta(params.depth_beta_alpha, params.depth_beta_beta);
        auto index = static_cast<std::size_t>(
            depth * static_cast<double>(path.links.size()));
        index = std::min(index, path.links.size() - 1);
        const double downtime_us = std::max(
            static_cast<double>(params.min_downtime),
            rng.normal(static_cast<double>(params.mean_downtime),
                       static_cast<double>(params.stddev_downtime)));
        const auto start = static_cast<util::SimTime>(t);
        const auto end = start + static_cast<util::SimTime>(downtime_us);
        if (end <= 0) continue;
        timeline.add_down(path.links[index],
                          DownInterval{std::max<util::SimTime>(start, 0),
                                       std::min(end, duration)});
    }
    timeline.finalize();
    return timeline;
}

}  // namespace concilium::net
