#include "net/chaos.h"

#include <algorithm>
#include <cmath>

#include "util/metrics.h"
#include "util/rate_spec.h"

namespace concilium::net {

namespace {

// Parse-order table; also the canonical to_string() order.
constexpr util::RateSpecKind kKinds[] = {
    {static_cast<std::size_t>(FaultKind::kFlap), "flap"},
    {static_cast<std::size_t>(FaultKind::kCorrelated), "corr"},
    {static_cast<std::size_t>(FaultKind::kLossSpike), "loss"},
    {static_cast<std::size_t>(FaultKind::kReorder), "reorder"},
    {static_cast<std::size_t>(FaultKind::kDuplicate), "dup"},
    {static_cast<std::size_t>(FaultKind::kChurn), "churn"},
    {static_cast<std::size_t>(FaultKind::kAckDrop), "ackdrop"},
    {static_cast<std::size_t>(FaultKind::kAckDelay), "ackdelay"},
    {static_cast<std::size_t>(FaultKind::kCrash), "crash"},
    {static_cast<std::size_t>(FaultKind::kPartition), "partition"},
};

// Dedicated substream tags for the recovery fault processes: their draws
// come from util::Rng::substream(rng.seed(), tag), never from the shared
// sequential stream, so adding crash:/partition: to a spec leaves every
// other kind's draws -- and therefore existing plans -- byte-identical.
constexpr std::uint64_t kCrashStream = 0x63726173;      // "cras"
constexpr std::uint64_t kPartitionStream = 0x70617274;  // "part"

}  // namespace

std::string_view to_string(FaultKind kind) {
    for (const util::RateSpecKind& k : kKinds) {
        if (k.slot == static_cast<std::size_t>(kind)) return k.name;
    }
    return "?";
}

FaultSpec FaultSpec::parse(std::string_view text) {
    FaultSpec spec;
    util::parse_rate_spec(text, "--chaos", "fault", kKinds, spec.rates_);
    return spec;
}

void FaultSpec::set_rate(FaultKind kind, double rate) {
    util::check_rate_bounds("--chaos", rate);
    rates_[static_cast<std::size_t>(kind)] = rate;
}

bool FaultSpec::empty() const noexcept {
    for (const double r : rates_) {
        if (r != 0.0) return false;
    }
    return true;
}

FaultSpec FaultSpec::scaled(double factor) const {
    FaultSpec out;
    for (std::size_t i = 0; i < static_cast<std::size_t>(FaultKind::kCount_);
         ++i) {
        out.rates_[i] = std::min(1.0, rates_[i] * factor);
    }
    return out;
}

std::string FaultSpec::to_string() const {
    return util::format_rate_spec(kKinds, rates_);
}

double FaultPlan::loss_at(LinkId link, util::SimTime t) const {
    // Spikes are rare (per-minute events); the linear scan is fine and
    // keeps the structure trivially copyable across threads.
    double loss = 0.0;
    for (const LossSpike& s : spikes) {
        if (s.link == link && t >= s.start && t < s.end) {
            loss = std::max(loss, s.loss);
        }
    }
    return loss;
}

bool FaultPlan::partition_active(util::SimTime t) const {
    for (const PartitionEvent& ev : partitions) {
        if (t < ev.start) break;  // sorted, non-overlapping
        if (t < ev.heal) return true;
    }
    return false;
}

bool FaultPlan::partition_blocks(std::size_t a, std::size_t b,
                                 util::SimTime t) const {
    if (a == b) return false;
    for (const PartitionEvent& ev : partitions) {
        if (t < ev.start) break;  // sorted, non-overlapping
        if (t >= ev.heal) continue;
        if (a >= ev.side.size() || b >= ev.side.size()) return false;
        return ev.side[a] != ev.side[b];
    }
    return false;
}

FaultPlan build_fault_plan(const FaultSpec& spec, util::SimTime duration,
                           std::span<const Path> candidate_paths,
                           std::size_t node_count, util::Rng& rng) {
    auto& registry = util::metrics::Registry::global();
    static auto& plans = registry.counter("chaos.plans_built");
    static auto& flaps = registry.counter("chaos.flap_intervals");
    static auto& outages = registry.counter("chaos.correlated_outages");
    static auto& spikes = registry.counter("chaos.loss_spikes");
    static auto& churns = registry.counter("chaos.churn_events");
    static auto& crashes = registry.counter("chaos.crash_events");
    static auto& partitions = registry.counter("chaos.partition_events");
    plans.add(1);

    FaultPlan plan;
    plan.reorder_rate = spec.rate(FaultKind::kReorder);
    plan.duplicate_rate = spec.rate(FaultKind::kDuplicate);
    plan.ack_drop_rate = spec.rate(FaultKind::kAckDrop);
    plan.ack_delay_rate = spec.rate(FaultKind::kAckDelay);

    const double minutes = util::to_seconds(duration) / 60.0;
    const auto pick_link = [&](util::Rng& r) -> LinkId {
        const Path& path = candidate_paths[r.uniform_index(
            candidate_paths.size())];
        return path.links[r.uniform_index(path.links.size())];
    };
    const auto event_count = [&](double per_minute_mean) {
        // Poisson arrivals via exponential gaps would also work; a binomial
        // draw per whole minute keeps the count bounded and the stream
        // consumption simple.
        std::size_t events = 0;
        const auto whole = static_cast<std::size_t>(minutes);
        for (std::size_t i = 0; i < whole; ++i) {
            if (rng.uniform() < per_minute_mean) ++events;
        }
        if (rng.uniform() < per_minute_mean * (minutes - static_cast<double>(
                                                             whole))) {
            ++events;
        }
        return events;
    };

    // --- link flaps: short independent down intervals -----------------------
    const double flap_rate = spec.rate(FaultKind::kFlap);
    if (flap_rate > 0.0 && !candidate_paths.empty()) {
        // Expected flap_rate * #links flaps per minute; 5-20 s downtime.
        std::size_t distinct_links = 0;
        for (const Path& p : candidate_paths) distinct_links += p.hops();
        const double per_minute =
            flap_rate * static_cast<double>(distinct_links) /
            std::max<double>(1.0, static_cast<double>(candidate_paths.size()));
        const auto n = static_cast<std::size_t>(per_minute * minutes);
        for (std::size_t i = 0; i < n; ++i) {
            const LinkId link = pick_link(rng);
            const auto start = static_cast<util::SimTime>(
                rng.uniform(0.0, static_cast<double>(duration)));
            const auto down = static_cast<util::SimTime>(
                rng.uniform(5.0, 20.0) * static_cast<double>(util::kSecond));
            plan.downs.add_down(link, {start, start + down});
            flaps.add(1);
        }
    }

    // --- correlated outages: a contiguous run of links on one path ----------
    const double corr_rate = spec.rate(FaultKind::kCorrelated);
    if (corr_rate > 0.0 && !candidate_paths.empty()) {
        const double per_minute =
            corr_rate * static_cast<double>(candidate_paths.size()) / 100.0;
        const std::size_t n = event_count(std::min(1.0, per_minute));
        for (std::size_t i = 0; i < n; ++i) {
            const Path& path = candidate_paths[rng.uniform_index(
                candidate_paths.size())];
            if (path.links.empty()) continue;
            const std::size_t width = std::min<std::size_t>(
                path.links.size(),
                static_cast<std::size_t>(rng.uniform_int(2, 5)));
            const std::size_t first =
                rng.uniform_index(path.links.size() - width + 1);
            const auto start = static_cast<util::SimTime>(
                rng.uniform(0.0, static_cast<double>(duration)));
            const auto down = static_cast<util::SimTime>(
                rng.uniform(30.0, 120.0) *
                static_cast<double>(util::kSecond));
            for (std::size_t l = 0; l < width; ++l) {
                plan.downs.add_down(path.links[first + l],
                                    {start, start + down});
            }
            outages.add(1);
        }
    }

    // --- loss spikes ---------------------------------------------------------
    const double loss_rate = spec.rate(FaultKind::kLossSpike);
    if (loss_rate > 0.0 && !candidate_paths.empty()) {
        const double per_minute =
            loss_rate * static_cast<double>(candidate_paths.size()) / 100.0;
        const std::size_t n = event_count(std::min(1.0, per_minute));
        for (std::size_t i = 0; i < n; ++i) {
            LossSpike spike;
            spike.link = pick_link(rng);
            spike.start = static_cast<util::SimTime>(
                rng.uniform(0.0, static_cast<double>(duration)));
            spike.end = spike.start + static_cast<util::SimTime>(
                                          rng.uniform(10.0, 60.0) *
                                          static_cast<double>(util::kSecond));
            spike.loss = rng.uniform(0.2, 0.8);
            plan.spikes.push_back(spike);
            spikes.add(1);
        }
        std::sort(plan.spikes.begin(), plan.spikes.end(),
                  [](const LossSpike& a, const LossSpike& b) {
                      if (a.link != b.link) return a.link < b.link;
                      return a.start < b.start;
                  });
    }

    // --- churn ---------------------------------------------------------------
    const double churn_rate = spec.rate(FaultKind::kChurn);
    if (churn_rate > 0.0 && node_count > 0) {
        // Per node: a leave each minute with probability churn_rate,
        // downtime 30 s - 5 min, never overlapping its own previous cycle.
        for (std::size_t node = 0; node < node_count; ++node) {
            util::SimTime t = 0;
            while (t < duration) {
                t += util::kMinute;
                if (rng.uniform() >= churn_rate) continue;
                const auto down = static_cast<util::SimTime>(
                    rng.uniform(30.0, 300.0) *
                    static_cast<double>(util::kSecond));
                if (t >= duration) break;
                plan.churn.push_back(
                    {node, t, std::min(duration, t + down)});
                churns.add(1);
                t += down;
            }
        }
        std::sort(plan.churn.begin(), plan.churn.end(),
                  [](const ChurnEvent& a, const ChurnEvent& b) {
                      if (a.leave != b.leave) return a.leave < b.leave;
                      return a.node < b.node;
                  });
    }

    // --- crash-stop cycles (dedicated substream) -----------------------------
    const double crash_rate = spec.rate(FaultKind::kCrash);
    if (crash_rate > 0.0 && node_count > 0) {
        // Like churn but with amnesia: downtime 1-4 min, restart recovers
        // from the node's journal.  Drawn from a substream of the caller's
        // seed so the shared stream above is never perturbed.
        util::Rng crash_rng =
            util::Rng::substream(rng.seed(), kCrashStream);
        for (std::size_t node = 0; node < node_count; ++node) {
            util::SimTime t = 0;
            while (t < duration) {
                t += util::kMinute;
                if (crash_rng.uniform() >= crash_rate) continue;
                const auto down = static_cast<util::SimTime>(
                    crash_rng.uniform(60.0, 240.0) *
                    static_cast<double>(util::kSecond));
                if (t >= duration) break;
                plan.crashes.push_back(
                    {node, t, std::min(duration, t + down)});
                crashes.add(1);
                t += down;
            }
        }
        std::sort(plan.crashes.begin(), plan.crashes.end(),
                  [](const CrashEvent& a, const CrashEvent& b) {
                      if (a.crash != b.crash) return a.crash < b.crash;
                      return a.node < b.node;
                  });
    }

    // --- partitions (dedicated substream) ------------------------------------
    const double part_rate = spec.rate(FaultKind::kPartition);
    if (part_rate > 0.0 && node_count > 1) {
        // Per-minute bisection events, healed after 1-3 min, never
        // overlapping.  The cut is a contiguous index split -- the shape a
        // failed inter-domain link produces: everyone on one side loses
        // everyone on the other, all at once.
        util::Rng part_rng =
            util::Rng::substream(rng.seed(), kPartitionStream);
        util::SimTime t = 0;
        while (t < duration) {
            t += util::kMinute;
            if (part_rng.uniform() >= part_rate) continue;
            if (t >= duration) break;
            const auto heal_delay = static_cast<util::SimTime>(
                part_rng.uniform(60.0, 180.0) *
                static_cast<double>(util::kSecond));
            const auto lo = std::max<std::int64_t>(
                1, static_cast<std::int64_t>(node_count / 4));
            const auto hi = std::max(
                lo, std::min<std::int64_t>(
                        static_cast<std::int64_t>(node_count) - 1,
                        static_cast<std::int64_t>(3 * node_count / 4)));
            const auto cut =
                static_cast<std::size_t>(part_rng.uniform_int(lo, hi));
            PartitionEvent ev;
            ev.start = t;
            ev.heal = std::min(duration, t + heal_delay);
            ev.side.assign(node_count, 0);
            for (std::size_t i = cut; i < node_count; ++i) ev.side[i] = 1;
            t = ev.heal;
            plan.partitions.push_back(std::move(ev));
            partitions.add(1);
        }
    }

    plan.downs.finalize();
    return plan;
}

}  // namespace concilium::net
