#include "net/chaos.h"

#include <algorithm>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "util/metrics.h"

namespace concilium::net {

namespace {

struct KindName {
    FaultKind kind;
    std::string_view name;
};

// Parse-order table; also the canonical to_string() order.
constexpr KindName kKinds[] = {
    {FaultKind::kFlap, "flap"},         {FaultKind::kCorrelated, "corr"},
    {FaultKind::kLossSpike, "loss"},    {FaultKind::kReorder, "reorder"},
    {FaultKind::kDuplicate, "dup"},     {FaultKind::kChurn, "churn"},
    {FaultKind::kAckDrop, "ackdrop"},   {FaultKind::kAckDelay, "ackdelay"},
};

[[noreturn]] void bad_spec(const std::string& what) {
    throw std::invalid_argument("--chaos: " + what);
}

std::string known_kinds() {
    std::string out;
    for (const KindName& k : kKinds) {
        if (!out.empty()) out += ", ";
        out += k.name;
    }
    return out;
}

/// Strict [0, 1] rate parse; rejects empty text, trailing junk, and
/// non-finite values (strtod alone would accept "1e3x" prefixes or "nan").
double parse_rate(std::string_view kind, std::string_view text) {
    const std::string owned(text);
    if (owned.empty()) {
        bad_spec("fault '" + std::string(kind) + "' has an empty rate");
    }
    errno = 0;
    char* end = nullptr;
    const double value = std::strtod(owned.c_str(), &end);
    if (end != owned.c_str() + owned.size() || !std::isfinite(value)) {
        bad_spec("fault '" + std::string(kind) + "' has a malformed rate '" +
                 owned + "'");
    }
    if (value < 0.0 || value > 1.0) {
        bad_spec("fault '" + std::string(kind) + "' rate " + owned +
                 " is outside [0, 1]");
    }
    return value;
}

}  // namespace

std::string_view to_string(FaultKind kind) {
    for (const KindName& k : kKinds) {
        if (k.kind == kind) return k.name;
    }
    return "?";
}

FaultSpec FaultSpec::parse(std::string_view text) {
    FaultSpec spec;
    bool seen[static_cast<std::size_t>(FaultKind::kCount_)] = {};
    while (!text.empty()) {
        const std::size_t comma = text.find(',');
        const std::string_view pair = text.substr(0, comma);
        if (comma != std::string_view::npos &&
            text.substr(comma + 1).empty()) {
            bad_spec("trailing ',' after '" + std::string(pair) + "'");
        }
        text = comma == std::string_view::npos ? std::string_view{}
                                               : text.substr(comma + 1);
        const std::size_t colon = pair.find(':');
        if (pair.empty() || colon == std::string_view::npos) {
            bad_spec("expected 'kind:rate', got '" + std::string(pair) + "'");
        }
        const std::string_view name = pair.substr(0, colon);
        const KindName* match = nullptr;
        for (const KindName& k : kKinds) {
            if (k.name == name) {
                match = &k;
                break;
            }
        }
        if (match == nullptr) {
            bad_spec("unknown fault kind '" + std::string(name) +
                     "' (known: " + known_kinds() + ")");
        }
        const auto slot = static_cast<std::size_t>(match->kind);
        if (seen[slot]) {
            bad_spec("fault '" + std::string(name) + "' given twice");
        }
        seen[slot] = true;
        spec.rates_[slot] = parse_rate(name, pair.substr(colon + 1));
    }
    return spec;
}

void FaultSpec::set_rate(FaultKind kind, double rate) {
    if (!(rate >= 0.0) || rate > 1.0) {
        bad_spec("rate " + std::to_string(rate) + " is outside [0, 1]");
    }
    rates_[static_cast<std::size_t>(kind)] = rate;
}

bool FaultSpec::empty() const noexcept {
    for (const double r : rates_) {
        if (r != 0.0) return false;
    }
    return true;
}

FaultSpec FaultSpec::scaled(double factor) const {
    FaultSpec out;
    for (std::size_t i = 0; i < static_cast<std::size_t>(FaultKind::kCount_);
         ++i) {
        out.rates_[i] = std::min(1.0, rates_[i] * factor);
    }
    return out;
}

std::string FaultSpec::to_string() const {
    std::string out;
    for (const KindName& k : kKinds) {
        const double r = rate(k.kind);
        if (r == 0.0) continue;
        if (!out.empty()) out += ',';
        char buf[48];
        std::snprintf(buf, sizeof buf, "%s:%g", std::string(k.name).c_str(),
                      r);
        out += buf;
    }
    return out;
}

double FaultPlan::loss_at(LinkId link, util::SimTime t) const {
    // Spikes are rare (per-minute events); the linear scan is fine and
    // keeps the structure trivially copyable across threads.
    double loss = 0.0;
    for (const LossSpike& s : spikes) {
        if (s.link == link && t >= s.start && t < s.end) {
            loss = std::max(loss, s.loss);
        }
    }
    return loss;
}

FaultPlan build_fault_plan(const FaultSpec& spec, util::SimTime duration,
                           std::span<const Path> candidate_paths,
                           std::size_t node_count, util::Rng& rng) {
    auto& registry = util::metrics::Registry::global();
    static auto& plans = registry.counter("chaos.plans_built");
    static auto& flaps = registry.counter("chaos.flap_intervals");
    static auto& outages = registry.counter("chaos.correlated_outages");
    static auto& spikes = registry.counter("chaos.loss_spikes");
    static auto& churns = registry.counter("chaos.churn_events");
    plans.add(1);

    FaultPlan plan;
    plan.reorder_rate = spec.rate(FaultKind::kReorder);
    plan.duplicate_rate = spec.rate(FaultKind::kDuplicate);
    plan.ack_drop_rate = spec.rate(FaultKind::kAckDrop);
    plan.ack_delay_rate = spec.rate(FaultKind::kAckDelay);

    const double minutes = util::to_seconds(duration) / 60.0;
    const auto pick_link = [&](util::Rng& r) -> LinkId {
        const Path& path = candidate_paths[r.uniform_index(
            candidate_paths.size())];
        return path.links[r.uniform_index(path.links.size())];
    };
    const auto event_count = [&](double per_minute_mean) {
        // Poisson arrivals via exponential gaps would also work; a binomial
        // draw per whole minute keeps the count bounded and the stream
        // consumption simple.
        std::size_t events = 0;
        const auto whole = static_cast<std::size_t>(minutes);
        for (std::size_t i = 0; i < whole; ++i) {
            if (rng.uniform() < per_minute_mean) ++events;
        }
        if (rng.uniform() < per_minute_mean * (minutes - static_cast<double>(
                                                             whole))) {
            ++events;
        }
        return events;
    };

    // --- link flaps: short independent down intervals -----------------------
    const double flap_rate = spec.rate(FaultKind::kFlap);
    if (flap_rate > 0.0 && !candidate_paths.empty()) {
        // Expected flap_rate * #links flaps per minute; 5-20 s downtime.
        std::size_t distinct_links = 0;
        for (const Path& p : candidate_paths) distinct_links += p.hops();
        const double per_minute =
            flap_rate * static_cast<double>(distinct_links) /
            std::max<double>(1.0, static_cast<double>(candidate_paths.size()));
        const auto n = static_cast<std::size_t>(per_minute * minutes);
        for (std::size_t i = 0; i < n; ++i) {
            const LinkId link = pick_link(rng);
            const auto start = static_cast<util::SimTime>(
                rng.uniform(0.0, static_cast<double>(duration)));
            const auto down = static_cast<util::SimTime>(
                rng.uniform(5.0, 20.0) * static_cast<double>(util::kSecond));
            plan.downs.add_down(link, {start, start + down});
            flaps.add(1);
        }
    }

    // --- correlated outages: a contiguous run of links on one path ----------
    const double corr_rate = spec.rate(FaultKind::kCorrelated);
    if (corr_rate > 0.0 && !candidate_paths.empty()) {
        const double per_minute =
            corr_rate * static_cast<double>(candidate_paths.size()) / 100.0;
        const std::size_t n = event_count(std::min(1.0, per_minute));
        for (std::size_t i = 0; i < n; ++i) {
            const Path& path = candidate_paths[rng.uniform_index(
                candidate_paths.size())];
            if (path.links.empty()) continue;
            const std::size_t width = std::min<std::size_t>(
                path.links.size(),
                static_cast<std::size_t>(rng.uniform_int(2, 5)));
            const std::size_t first =
                rng.uniform_index(path.links.size() - width + 1);
            const auto start = static_cast<util::SimTime>(
                rng.uniform(0.0, static_cast<double>(duration)));
            const auto down = static_cast<util::SimTime>(
                rng.uniform(30.0, 120.0) *
                static_cast<double>(util::kSecond));
            for (std::size_t l = 0; l < width; ++l) {
                plan.downs.add_down(path.links[first + l],
                                    {start, start + down});
            }
            outages.add(1);
        }
    }

    // --- loss spikes ---------------------------------------------------------
    const double loss_rate = spec.rate(FaultKind::kLossSpike);
    if (loss_rate > 0.0 && !candidate_paths.empty()) {
        const double per_minute =
            loss_rate * static_cast<double>(candidate_paths.size()) / 100.0;
        const std::size_t n = event_count(std::min(1.0, per_minute));
        for (std::size_t i = 0; i < n; ++i) {
            LossSpike spike;
            spike.link = pick_link(rng);
            spike.start = static_cast<util::SimTime>(
                rng.uniform(0.0, static_cast<double>(duration)));
            spike.end = spike.start + static_cast<util::SimTime>(
                                          rng.uniform(10.0, 60.0) *
                                          static_cast<double>(util::kSecond));
            spike.loss = rng.uniform(0.2, 0.8);
            plan.spikes.push_back(spike);
            spikes.add(1);
        }
        std::sort(plan.spikes.begin(), plan.spikes.end(),
                  [](const LossSpike& a, const LossSpike& b) {
                      if (a.link != b.link) return a.link < b.link;
                      return a.start < b.start;
                  });
    }

    // --- churn ---------------------------------------------------------------
    const double churn_rate = spec.rate(FaultKind::kChurn);
    if (churn_rate > 0.0 && node_count > 0) {
        // Per node: a leave each minute with probability churn_rate,
        // downtime 30 s - 5 min, never overlapping its own previous cycle.
        for (std::size_t node = 0; node < node_count; ++node) {
            util::SimTime t = 0;
            while (t < duration) {
                t += util::kMinute;
                if (rng.uniform() >= churn_rate) continue;
                const auto down = static_cast<util::SimTime>(
                    rng.uniform(30.0, 300.0) *
                    static_cast<double>(util::kSecond));
                if (t >= duration) break;
                plan.churn.push_back(
                    {node, t, std::min(duration, t + down)});
                churns.add(1);
                t += down;
            }
        }
        std::sort(plan.churn.begin(), plan.churn.end(),
                  [](const ChurnEvent& a, const ChurnEvent& b) {
                      if (a.leave != b.leave) return a.leave < b.leave;
                      return a.node < b.node;
                  });
    }

    plan.downs.finalize();
    return plan;
}

}  // namespace concilium::net
