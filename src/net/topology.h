// Router-level IP topology.
//
// The paper's simulations place a Pastry overlay atop a router topology
// gathered by the SCAN project: 112,969 routers and 181,639 links, with end
// hosts defined as routers that have only one link (Section 4.2).  Topology
// is the passive graph; generation, path computation, and failure dynamics
// live in sibling modules.

#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace concilium::net {

using RouterId = std::uint32_t;
using LinkId = std::uint32_t;

constexpr LinkId kInvalidLink = 0xffffffffu;
constexpr RouterId kInvalidRouter = 0xffffffffu;

/// Coarse role labels assigned by the generator; path and failure logic never
/// depends on them, but they make tests and edge-bias diagnostics readable.
enum class RouterTier : std::uint8_t {
    kCore = 0,     ///< transit-domain backbone router
    kStub = 1,     ///< stub-domain router
    kEndHost = 2,  ///< degree-1 leaf machine
};

/// Administrative-domain label; kNoDomain for core routers.
using DomainId = std::int32_t;
constexpr DomainId kNoDomain = -1;

struct Link {
    RouterId a = kInvalidRouter;
    RouterId b = kInvalidRouter;

    [[nodiscard]] RouterId other(RouterId self) const noexcept {
        return self == a ? b : a;
    }
};

class Topology {
  public:
    /// Adds a router and returns its id.  Domain labels group stub routers
    /// and their end hosts into administrative domains (Section 3.7's
    /// "hosts ... in the same stub network"); core routers carry kNoDomain.
    RouterId add_router(RouterTier tier, DomainId domain = kNoDomain);

    /// Adds an undirected link; returns its id.  Self-loops and duplicate
    /// links are rejected with std::invalid_argument.
    LinkId add_link(RouterId a, RouterId b);

    [[nodiscard]] std::size_t router_count() const noexcept {
        return tiers_.size();
    }
    [[nodiscard]] std::size_t link_count() const noexcept {
        return links_.size();
    }

    [[nodiscard]] RouterTier tier(RouterId r) const { return tiers_.at(r); }
    [[nodiscard]] DomainId domain(RouterId r) const { return domains_.at(r); }
    [[nodiscard]] const Link& link(LinkId l) const { return links_.at(l); }

    struct Edge {
        RouterId neighbor;
        LinkId link;
    };
    [[nodiscard]] std::span<const Edge> neighbors(RouterId r) const {
        return adjacency_.at(r);
    }
    [[nodiscard]] std::size_t degree(RouterId r) const {
        return adjacency_.at(r).size();
    }

    /// Existing link between a and b, or kInvalidLink.
    [[nodiscard]] LinkId find_link(RouterId a, RouterId b) const;

    /// All degree-1 routers; the paper draws overlay hosts from these.
    [[nodiscard]] std::vector<RouterId> end_hosts() const;

    /// True when every router can reach router 0.
    [[nodiscard]] bool connected() const;

  private:
    std::vector<RouterTier> tiers_;
    std::vector<DomainId> domains_;
    std::vector<Link> links_;
    std::vector<std::vector<Edge>> adjacency_;
};

}  // namespace concilium::net
