// Synthetic router-level topology generation.
//
// The paper's evaluation uses a SCAN-project snapshot of the Internet
// (112,969 routers, 181,639 links) that is not redistributable; we substitute
// a deterministic hierarchical transit-stub generator whose outputs match the
// structural properties the experiments depend on:
//
//   * a small, densely meshed core whose links are shared by many
//     overlay-node pairs (this drives the diminishing-returns shape of
//     Figure 4's coverage curve),
//   * bushy stub domains hanging off the core,
//   * a large population of degree-1 end hosts ("end hosts are routers with
//     only one link"), each reached through a unique last-mile link (this
//     drives the long tail of Figure 4), and
//   * a link/router ratio close to SCAN's 1.61.
//
// scan_like_params() reproduces the SCAN scale; medium/small presets keep
// default benchmark and test runtimes reasonable.

#pragma once

#include <cstdint>

#include "net/topology.h"
#include "util/rng.h"

namespace concilium::net {

struct TopologyParams {
    int transit_domains = 4;          ///< autonomous-system-like core domains
    int routers_per_transit = 10;     ///< core routers per transit domain
    int stub_domains = 60;            ///< stub networks hanging off the core
    int routers_per_stub = 12;        ///< mean stub-domain size (+-50%)
    int end_hosts = 900;              ///< degree-1 leaf machines
    double transit_chord_fraction = 0.5;  ///< extra intra-core chords / router
    double stub_chord_fraction = 0.9;     ///< extra intra-stub chords / router
    double dual_home_probability = 0.3;   ///< stub gateways with two uplinks
    int inter_domain_links = 6;           ///< extra core-domain interconnects
};

/// Roughly SCAN scale: ~113k routers, ~182k links, ~37k end hosts.
TopologyParams scan_like_params();

/// ~1/8 SCAN scale; the default for benchmark figures.
TopologyParams medium_params();

/// A few hundred routers; the default for unit tests.
TopologyParams small_params();

/// Generates a connected transit-stub topology.  Deterministic given the Rng
/// state.  Throws std::invalid_argument on degenerate parameters.
Topology generate_topology(const TopologyParams& params, util::Rng& rng);

/// Summary statistics used by tests and DESIGN.md-style sanity reports.
struct TopologyStats {
    std::size_t routers = 0;
    std::size_t links = 0;
    std::size_t core_routers = 0;
    std::size_t stub_routers = 0;
    std::size_t end_hosts = 0;
    double link_router_ratio = 0.0;
    double mean_interior_degree = 0.0;
};

TopologyStats summarize(const Topology& topo);

}  // namespace concilium::net
