// Deterministic fault injection ("chaos") for simulations.
//
// The paper's evaluation bakes one static fault pattern into each figure's
// scenario; the robustness claims of Section 5, however, live in the regime
// where failures are correlated, bursty, and entangled with membership
// churn.  This module supplies that regime as data: a FaultSpec names the
// fault processes and their rates (parsed from a `--chaos flap:0.02,...`
// spec string), and build_fault_plan() expands it into a FaultPlan -- a
// fully materialized, immutable schedule of link flaps, correlated
// multi-link outages, loss-rate spikes, and node churn, plus per-packet
// reorder/duplicate/ack rates.
//
// Everything is generated up front from one util::Rng, exactly like
// net::generate_failure_timeline: a plan is a pure function of
// (spec, duration, candidate paths, node count, rng seed), so any chaos run
// is byte-reproducible at any --jobs count.  Consumers only ever read a
// finished plan: net::Transport consults link_up()/loss_at() on every
// packet, runtime::Cluster schedules the churn events and draws the
// per-packet effects from its own (single-threaded) generator.

#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "net/link_state.h"
#include "net/paths.h"
#include "util/rng.h"
#include "util/time.h"

namespace concilium::net {

/// The fault processes a chaos spec may enable.  Rates are probabilities
/// (or per-minute intensities, see FaultSpec) and must lie in [0, 1].
enum class FaultKind : std::size_t {
    kFlap = 0,     ///< short independent link down intervals
    kCorrelated,   ///< multi-link outages along one overlay path
    kLossSpike,    ///< transient elevated loss on a healthy link
    kReorder,      ///< per-packet extra delivery delay (reordering)
    kDuplicate,    ///< per-packet duplication
    kChurn,        ///< node leave/rejoin
    kAckDrop,      ///< dropped tomography probe acknowledgments
    kAckDelay,     ///< delayed end-to-end acknowledgment relays
    kCrash,        ///< node crash-stop (amnesia) + delayed restart
    kPartition,    ///< correlated bisection of the overlay, scheduled heal
    kCount_,       // sentinel
};

[[nodiscard]] std::string_view to_string(FaultKind kind);

/// A parsed `--chaos` spec: which fault processes run and how hard.
///
/// Grammar (see CHAOS.md):   spec  := pair ("," pair)*
///                           pair  := kind ":" rate
///                           kind  := flap | corr | loss | reorder | dup |
///                                    churn | ackdrop | ackdelay |
///                                    crash | partition
///                           rate  := decimal in [0, 1]
///
/// Semantics: `flap`, `corr`, and `loss` are per-minute event intensities
/// (flap: expected fraction of candidate links flapped per minute; corr /
/// loss: expected events per minute per 100 candidate links); `churn` is a
/// per-node per-minute leave probability; `crash` is a per-node per-minute
/// crash-stop probability (restart after 1-4 min, see RECOVERY.md);
/// `partition` is a per-minute probability of a correlated bisection event
/// (heal after 1-3 min); the rest are per-packet (or per-ack)
/// probabilities.
class FaultSpec {
  public:
    FaultSpec() = default;

    /// Strict parser.  Throws std::invalid_argument naming the offending
    /// token on an unknown fault kind, a malformed rate, a rate outside
    /// [0, 1], or a duplicated kind.  The empty string is the empty spec.
    [[nodiscard]] static FaultSpec parse(std::string_view text);

    [[nodiscard]] double rate(FaultKind kind) const noexcept {
        return rates_[static_cast<std::size_t>(kind)];
    }
    void set_rate(FaultKind kind, double rate);

    /// True when every rate is zero.
    [[nodiscard]] bool empty() const noexcept;

    /// The spec with every rate multiplied by `factor` (clamped to 1.0);
    /// soak sweeps scale one base spec through intensity levels.
    [[nodiscard]] FaultSpec scaled(double factor) const;

    /// Canonical re-serialization (enabled kinds in enum order); parsing
    /// the result reproduces the spec.
    [[nodiscard]] std::string to_string() const;

  private:
    double rates_[static_cast<std::size_t>(FaultKind::kCount_)] = {};
};

/// One transient elevated-loss window on a link.
struct LossSpike {
    LinkId link = 0;
    util::SimTime start = 0;
    util::SimTime end = 0;  ///< exclusive
    double loss = 0.0;      ///< residual loss rate while active
};

/// One node leave/rejoin cycle.
struct ChurnEvent {
    std::size_t node = 0;
    util::SimTime leave = 0;
    util::SimTime rejoin = 0;
};

/// One crash-stop cycle.  Unlike churn (a graceful leave), a crash drops
/// all volatile state: on restart the node recovers from its
/// runtime::NodeJournal and re-joins via the recovery handshake
/// (RECOVERY.md).
struct CrashEvent {
    std::size_t node = 0;
    util::SimTime crash = 0;
    util::SimTime restart = 0;
};

/// One correlated bisection: every overlay node is assigned a side, and
/// while the event is active no packet, acknowledgment, probe, snapshot,
/// or control message crosses between sides.  Events never overlap.
struct PartitionEvent {
    util::SimTime start = 0;
    util::SimTime heal = 0;  ///< exclusive
    /// side[node] is 0 or 1; nodes on different sides cannot reach each
    /// other while the event is active.
    std::vector<std::uint8_t> side;
};

/// A materialized chaos schedule.  Plain data plus read-only queries; safe
/// to share by const reference across experiment-driver workers.
struct FaultPlan {
    /// Flap + correlated-outage down intervals, merged and finalized.
    FailureTimeline downs;
    /// Loss spikes, grouped per link and sorted by start time.
    std::vector<LossSpike> spikes;
    /// Churn schedule, sorted by leave time.
    std::vector<ChurnEvent> churn;
    /// Crash-stop schedule, sorted by crash time.
    std::vector<CrashEvent> crashes;
    /// Partition schedule, sorted by start time; events never overlap.
    std::vector<PartitionEvent> partitions;
    // Per-packet effect rates, copied from the spec.
    double reorder_rate = 0.0;
    double duplicate_rate = 0.0;
    double ack_drop_rate = 0.0;
    double ack_delay_rate = 0.0;
    /// Extra delay drawn (uniformly in (0, this]) for a reordered packet or
    /// a delayed acknowledgment relay.
    util::SimTime max_extra_delay = 500 * util::kMillisecond;

    /// False when a flap or correlated outage has the link down at t.
    [[nodiscard]] bool link_up(LinkId link, util::SimTime t) const {
        return downs.is_up(link, t);
    }

    /// The residual loss injected on `link` at time t (0 outside spikes;
    /// overlapping spikes yield the maximum).
    [[nodiscard]] double loss_at(LinkId link, util::SimTime t) const;

    [[nodiscard]] bool has_packet_effects() const noexcept {
        return reorder_rate > 0.0 || duplicate_rate > 0.0;
    }

    /// True when a partition event is active at t.
    [[nodiscard]] bool partition_active(util::SimTime t) const;

    /// True when overlay nodes a and b sit on opposite sides of a
    /// partition active at t.  Nodes beyond the recorded side vector are
    /// treated as unpartitioned.
    [[nodiscard]] bool partition_blocks(std::size_t a, std::size_t b,
                                        util::SimTime t) const;

    /// True when the plan contains crash or partition events -- the
    /// trigger for the runtime's degraded-mode diagnosis (a guilty verdict
    /// then demands post-incident evidence coverage; see RECOVERY.md).
    [[nodiscard]] bool has_recovery_faults() const noexcept {
        return !crashes.empty() || !partitions.empty();
    }
};

/// Expands a spec into a plan for [0, duration).  `candidate_paths` plays
/// the same role as in generate_failure_timeline: flaps pick a uniform
/// (path, link) position, correlated outages take down a contiguous run of
/// links along one path, loss spikes pick single links.  `node_count` is
/// the overlay size the churn process draws from.  Deterministic: the plan
/// is a pure function of the arguments and the rng's seed.
[[nodiscard]] FaultPlan build_fault_plan(const FaultSpec& spec,
                                         util::SimTime duration,
                                         std::span<const Path> candidate_paths,
                                         std::size_t node_count,
                                         util::Rng& rng);

}  // namespace concilium::net
