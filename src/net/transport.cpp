#include "net/transport.h"

#include <algorithm>
#include <utility>

#include "util/metrics.h"

namespace concilium::net {

double Transport::pass_probability(LinkId link, util::SimTime t) const {
    if (!timeline_->is_up(link, t)) return 0.0;
    double loss = params_.healthy_link_loss;
    if (chaos_ != nullptr) {
        if (!chaos_->link_up(link, t)) return 0.0;
        loss = std::max(loss, chaos_->loss_at(link, t));
    }
    return 1.0 - loss;
}

bool Transport::sample_traversal(std::span<const LinkId> links,
                                 util::SimTime t) {
    static auto& sent =
        util::metrics::Registry::global().counter("net.packets_sent");
    static auto& delivered =
        util::metrics::Registry::global().counter("net.packets_delivered");
    static auto& dropped =
        util::metrics::Registry::global().counter("net.packets_dropped");
    sent.add(1);
    util::SimTime cross = t;
    for (const LinkId link : links) {
        if (!rng_.bernoulli(pass_probability(link, cross))) {
            dropped.add(1);
            return false;
        }
        cross += params_.per_hop_latency;
    }
    delivered.add(1);
    return true;
}

bool Transport::sample_traversal(const Path& path, util::SimTime t) {
    return sample_traversal(path.links, t);
}

void Transport::send(const Path& path, std::function<void()> on_deliver,
                     std::function<void()> on_drop) {
    const bool ok = sample_traversal(path, sim_->now());
    sim_->schedule_after(latency(path),
                         ok ? std::move(on_deliver) : std::move(on_drop));
}

}  // namespace concilium::net
