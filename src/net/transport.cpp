#include "net/transport.h"

#include <utility>

namespace concilium::net {

double Transport::pass_probability(LinkId link, util::SimTime t) const {
    if (!timeline_->is_up(link, t)) return 0.0;
    return 1.0 - params_.healthy_link_loss;
}

bool Transport::sample_traversal(std::span<const LinkId> links,
                                 util::SimTime t) {
    util::SimTime cross = t;
    for (const LinkId link : links) {
        if (!rng_.bernoulli(pass_probability(link, cross))) return false;
        cross += params_.per_hop_latency;
    }
    return true;
}

bool Transport::sample_traversal(const Path& path, util::SimTime t) {
    return sample_traversal(path.links, t);
}

void Transport::send(const Path& path, std::function<void()> on_deliver,
                     std::function<void()> on_drop) {
    const bool ok = sample_traversal(path, sim_->now());
    sim_->schedule_after(latency(path),
                         ok ? std::move(on_deliver) : std::move(on_drop));
}

}  // namespace concilium::net
