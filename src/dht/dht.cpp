#include "dht/dht.h"

#include <algorithm>
#include <stdexcept>

namespace concilium::dht {

Dht::Dht(const overlay::OverlayNetwork& net, int replication)
    : net_(&net), replication_(replication), storage_(net.size()) {
    if (replication < 1) {
        throw std::invalid_argument("Dht: replication must be >= 1");
    }
}

std::vector<overlay::MemberIndex> Dht::replica_set(
    const util::NodeId& key) const {
    const overlay::MemberIndex root = net_->root_of(key);
    std::vector<overlay::MemberIndex> replicas{root};
    // Nearest leaf neighbours of the root, alternating sides so the set
    // stays centred on the key.
    const overlay::LeafSet& leaves = net_->leaf_set(root);
    const auto cw = leaves.successors();
    const auto ccw = leaves.predecessors();
    std::size_t i = 0;
    while (replicas.size() < static_cast<std::size_t>(replication_)) {
        bool added = false;
        if (i < cw.size()) {
            replicas.push_back(cw[i]);
            added = true;
        }
        if (replicas.size() < static_cast<std::size_t>(replication_) &&
            i < ccw.size()) {
            replicas.push_back(ccw[i]);
            added = true;
        }
        if (!added) break;  // overlay smaller than the replica target
        ++i;
    }
    std::sort(replicas.begin(), replicas.end());
    replicas.erase(std::unique(replicas.begin(), replicas.end()),
                   replicas.end());
    return replicas;
}

Dht::PutResult Dht::put(overlay::MemberIndex via, const util::NodeId& key,
                        std::vector<std::uint8_t> value) {
    PutResult result;
    result.route = net_->route(via, key);
    result.replicas = replica_set(key);
    for (const overlay::MemberIndex m : result.replicas) {
        auto& values = storage_.at(m)[key];
        if (std::find(values.begin(), values.end(), value) == values.end()) {
            values.push_back(value);
        }
    }
    return result;
}

Dht::GetResult Dht::get(overlay::MemberIndex via,
                        const util::NodeId& key) const {
    GetResult result;
    result.route = net_->route(via, key);
    for (const overlay::MemberIndex m : replica_set(key)) {
        const auto& node_store = storage_.at(m);
        const auto it = node_store.find(key);
        if (it == node_store.end()) continue;
        for (const auto& v : it->second) {
            if (std::find(result.values.begin(), result.values.end(), v) ==
                result.values.end()) {
                result.values.push_back(v);
            }
        }
    }
    return result;
}

std::size_t Dht::stored_at(overlay::MemberIndex m) const {
    std::size_t n = 0;
    for (const auto& [key, values] : storage_.at(m)) {
        n += values.size();
    }
    return n;
}

}  // namespace concilium::dht
