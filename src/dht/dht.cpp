#include "dht/dht.h"

#include <algorithm>
#include <stdexcept>

#include "util/metrics.h"

namespace concilium::dht {

Dht::Dht(const overlay::OverlayNetwork& net, int replication,
         int per_writer_quota)
    : net_(&net), replication_(replication),
      per_writer_quota_(per_writer_quota), storage_(net.size()) {
    if (replication < 1) {
        throw std::invalid_argument("Dht: replication must be >= 1");
    }
    if (per_writer_quota < 0) {
        throw std::invalid_argument("Dht: per_writer_quota must be >= 0");
    }
}

std::vector<overlay::MemberIndex> Dht::replica_set(
    const util::NodeId& key) const {
    const overlay::MemberIndex root = net_->root_of(key);
    std::vector<overlay::MemberIndex> replicas{root};
    // Nearest leaf neighbours of the root, alternating sides so the set
    // stays centred on the key.
    const overlay::LeafSet& leaves = net_->leaf_set(root);
    const auto cw = leaves.successors();
    const auto ccw = leaves.predecessors();
    std::size_t i = 0;
    while (replicas.size() < static_cast<std::size_t>(replication_)) {
        bool added = false;
        if (i < cw.size()) {
            replicas.push_back(cw[i]);
            added = true;
        }
        if (replicas.size() < static_cast<std::size_t>(replication_) &&
            i < ccw.size()) {
            replicas.push_back(ccw[i]);
            added = true;
        }
        if (!added) break;  // overlay smaller than the replica target
        ++i;
    }
    std::sort(replicas.begin(), replicas.end());
    replicas.erase(std::unique(replicas.begin(), replicas.end()),
                   replicas.end());
    return replicas;
}

Dht::PutResult Dht::put(overlay::MemberIndex via, const util::NodeId& key,
                        std::vector<std::uint8_t> value) {
    auto& registry = util::metrics::Registry::global();
    static auto& puts = registry.counter("dht.puts");
    static auto& rejected = registry.counter("dht.puts_rejected_quota");
    puts.add(1);

    PutResult result;
    result.route = net_->route(via, key);
    result.replicas = replica_set(key);
    bool stored_anywhere = false;
    for (const overlay::MemberIndex m : result.replicas) {
        auto& values = storage_.at(m)[key];
        const bool duplicate =
            std::any_of(values.begin(), values.end(),
                        [&](const StoredValue& s) { return s.value == value; });
        if (duplicate) {
            stored_anywhere = true;  // already present; the put is effective
            continue;
        }
        if (per_writer_quota_ > 0) {
            const auto from_writer = std::count_if(
                values.begin(), values.end(),
                [&](const StoredValue& s) { return s.writer == via; });
            if (from_writer >= per_writer_quota_) continue;
        }
        values.push_back(StoredValue{value, via});
        stored_anywhere = true;
    }
    result.accepted = stored_anywhere;
    if (!stored_anywhere) rejected.add(1);
    return result;
}

Dht::GetResult Dht::get(overlay::MemberIndex via,
                        const util::NodeId& key) const {
    auto& registry = util::metrics::Registry::global();
    static auto& gets = registry.counter("dht.gets");
    gets.add(1);

    GetResult result;
    result.route = net_->route(via, key);
    for (const overlay::MemberIndex m : replica_set(key)) {
        const auto& node_store = storage_.at(m);
        const auto it = node_store.find(key);
        if (it == node_store.end()) continue;
        for (const auto& stored : it->second) {
            result.values.push_back(stored.value);
        }
    }
    // Canonical order: the reader's view must not depend on replica
    // iteration or insertion history.
    std::sort(result.values.begin(), result.values.end());
    result.values.erase(
        std::unique(result.values.begin(), result.values.end()),
        result.values.end());
    return result;
}

std::size_t Dht::stored_at(overlay::MemberIndex m) const {
    std::size_t n = 0;
    for (const auto& [key, values] : storage_.at(m)) {
        n += values.size();
    }
    return n;
}

}  // namespace concilium::dht
