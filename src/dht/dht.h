// Accusation repository: a replicated DHT atop the secure overlay.
//
// "A inserts a formal fault accusation into a DHT which exists atop the
// secure overlay.  The insertion key for the accusation is B's public key ...
// Insertions and fetches of the formal accusation are secured using Castro's
// techniques" (Section 3.4).
//
// Entries are append-only multisets: many accusers may store accusations
// under the same key, and nothing is ever silently replaced.  Each entry is
// replicated on the key root and its nearest leaf-set neighbours so that a
// single faulty replica cannot make an accusation disappear.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "overlay/network.h"
#include "util/ids.h"

namespace concilium::dht {

class Dht {
  public:
    /// replication: total copies per entry (root + replication-1 leaf
    /// neighbours of the root).
    Dht(const overlay::OverlayNetwork& net, int replication = 4);

    struct PutResult {
        std::vector<overlay::MemberIndex> route;     ///< secure route walked
        std::vector<overlay::MemberIndex> replicas;  ///< nodes now storing it
    };

    /// Routes from `via` to the key root and stores `value` on the replica
    /// set.  Duplicate values under the same key are kept once per replica.
    PutResult put(overlay::MemberIndex via, const util::NodeId& key,
                  std::vector<std::uint8_t> value);

    struct GetResult {
        std::vector<overlay::MemberIndex> route;
        std::vector<std::vector<std::uint8_t>> values;  ///< deduplicated
    };

    /// Routes from `via` to the key root and returns the union of the
    /// replica set's stored values.
    [[nodiscard]] GetResult get(overlay::MemberIndex via,
                                const util::NodeId& key) const;

    /// The replica set for a key: its root plus nearest leaf neighbours.
    [[nodiscard]] std::vector<overlay::MemberIndex> replica_set(
        const util::NodeId& key) const;

    /// Number of values stored at one member (for balance diagnostics).
    [[nodiscard]] std::size_t stored_at(overlay::MemberIndex m) const;

  private:
    const overlay::OverlayNetwork* net_;
    int replication_;
    /// Per member: key -> stored values.
    std::vector<std::unordered_map<util::NodeId, std::vector<std::vector<std::uint8_t>>,
                                   util::NodeIdHash>>
        storage_;
};

}  // namespace concilium::dht
