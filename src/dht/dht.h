// Accusation repository: a replicated DHT atop the secure overlay.
//
// "A inserts a formal fault accusation into a DHT which exists atop the
// secure overlay.  The insertion key for the accusation is B's public key ...
// Insertions and fetches of the formal accusation are secured using Castro's
// techniques" (Section 3.4).
//
// Entries are append-only multisets: many accusers may store accusations
// under the same key, and nothing is ever silently replaced.  Each entry is
// replicated on the key root and its nearest leaf-set neighbours so that a
// single faulty replica cannot make an accusation disappear.
//
// Two abuse containments guard the repository itself: duplicate values under
// a key are stored once per replica, and an optional per-writer quota bounds
// how many distinct values any single member can pin under one key -- an
// accusation spammer exhausts its quota while other writers' entries remain
// fetchable.

#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "overlay/network.h"
#include "util/ids.h"

namespace concilium::dht {

class Dht {
  public:
    /// replication: total copies per entry (root + replication-1 leaf
    /// neighbours of the root).
    /// per_writer_quota: maximum distinct values a single writer may store
    /// under one key at each replica (0 = unlimited).
    Dht(const overlay::OverlayNetwork& net, int replication = 4,
        int per_writer_quota = 0);

    struct PutResult {
        std::vector<overlay::MemberIndex> route;     ///< secure route walked
        std::vector<overlay::MemberIndex> replicas;  ///< nodes now storing it
        /// False when every replica refused the value (quota exhausted).
        bool accepted = true;
    };

    /// Routes from `via` to the key root and stores `value` on the replica
    /// set, attributed to `via` as the writer.  Duplicate values under the
    /// same key are kept once per replica and do not consume quota.
    PutResult put(overlay::MemberIndex via, const util::NodeId& key,
                  std::vector<std::uint8_t> value);

    struct GetResult {
        std::vector<overlay::MemberIndex> route;
        /// Union of the replica set's stored values, deduplicated and in
        /// ascending lexicographic byte order -- independent of insertion
        /// or replica iteration order, so readers are deterministic.
        std::vector<std::vector<std::uint8_t>> values;
    };

    /// Routes from `via` to the key root and returns the union of the
    /// replica set's stored values.
    [[nodiscard]] GetResult get(overlay::MemberIndex via,
                                const util::NodeId& key) const;

    /// The replica set for a key: its root plus nearest leaf neighbours.
    [[nodiscard]] std::vector<overlay::MemberIndex> replica_set(
        const util::NodeId& key) const;

    /// Number of values stored at one member (for balance diagnostics).
    [[nodiscard]] std::size_t stored_at(overlay::MemberIndex m) const;

    [[nodiscard]] int per_writer_quota() const noexcept {
        return per_writer_quota_;
    }

  private:
    struct StoredValue {
        std::vector<std::uint8_t> value;
        overlay::MemberIndex writer;
    };

    const overlay::OverlayNetwork* net_;
    int replication_;
    int per_writer_quota_;
    /// Per member: key -> stored values with writer attribution.  Keys are
    /// content identifiers arriving off the wire, not member addresses, so
    /// there is no dense index to translate them to.
    // hot-path-lint: boundary
    std::vector<
        std::unordered_map<util::NodeId, std::vector<StoredValue>,
                           util::NodeIdHash>>
        storage_;
};

}  // namespace concilium::dht
