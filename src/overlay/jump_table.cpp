#include "overlay/jump_table.h"

#include <stdexcept>

namespace concilium::overlay {

JumpTable::JumpTable(util::NodeId owner, util::OverlayGeometry geometry)
    : owner_(owner), geometry_(geometry),
      slots_(static_cast<std::size_t>(geometry.table_slots())) {
    if (geometry.digits < 1 ||
        geometry.digits > util::OverlayGeometry::kMaxDigits) {
        throw std::invalid_argument("JumpTable: bad geometry");
    }
}

std::size_t JumpTable::index_of(int row, int col) const {
    if (row < 0 || row >= geometry_.rows() || col < 0 ||
        col >= geometry_.columns()) {
        throw std::out_of_range("JumpTable: slot index out of range");
    }
    return static_cast<std::size_t>(row) *
               static_cast<std::size_t>(geometry_.columns()) +
           static_cast<std::size_t>(col);
}

std::optional<MemberIndex> JumpTable::slot(int row, int col) const {
    return slots_[index_of(row, col)];
}

void JumpTable::set_slot(int row, int col, MemberIndex member) {
    auto& s = slots_[index_of(row, col)];
    if (!s.has_value()) ++occupancy_;
    s = member;
}

void JumpTable::clear_slot(int row, int col) {
    auto& s = slots_[index_of(row, col)];
    if (s.has_value()) --occupancy_;
    s.reset();
}

double JumpTable::density() const noexcept {
    return static_cast<double>(occupancy_) /
           static_cast<double>(geometry_.table_slots());
}

std::vector<JumpTable::Entry> JumpTable::entries() const {
    std::vector<Entry> out;
    out.reserve(static_cast<std::size_t>(occupancy_));
    for (int row = 0; row < geometry_.rows(); ++row) {
        for (int col = 0; col < geometry_.columns(); ++col) {
            const auto& s = slots_[index_of(row, col)];
            if (s.has_value()) out.push_back(Entry{row, col, *s});
        }
    }
    return out;
}

bool JumpTable::satisfies_standard_constraint(
    int row, int col, const util::NodeId& candidate) const {
    if (candidate == owner_) return false;
    return candidate.shared_prefix_digits(owner_) >= row &&
           candidate.digit(row) == col;
}

util::NodeId JumpTable::constraint_point(int row, int col) const {
    return owner_.with_digit(row, col);
}

}  // namespace concilium::overlay
