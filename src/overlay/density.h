// Jump-table and leaf-set density validation (Section 3.1, Figures 1-3).
//
// Peers exchange routing tables so that Concilium can predict forwarding
// paths; a peer that under-reports its table (suppressing honest nodes) or
// over-reports it can steer traffic to confederates or dodge blame.  The
// occupancy test compares the advertised density d_peer against the local
// density d_local: the table is deemed invalid when gamma * d_peer < d_local
// for a small gamma > 1.
//
// This module implements both the runtime check and the analytic error model
// used to choose gamma: Equation 1's slot-fill probability, the
// Poisson-binomial occupancy distribution with its normal approximation, the
// false-positive / false-negative integrals, and a Monte Carlo occupancy
// sampler for validating the model (Figure 1).

#pragma once

#include <vector>

#include "util/ids.h"
#include "util/rng.h"
#include "util/stats.h"

namespace concilium::overlay {

/// Equation 1: Pr(entry filled in row i) = 1 - [1 - (1/v)^(i+1)]^(N-1),
/// with rows indexed from 0.  `n_nodes` is the total overlay population N.
double slot_fill_probability(int row, double n_nodes,
                             const util::OverlayGeometry& geometry);

/// The flattened l x v grid of p_ij values (constant across columns).
std::vector<double> fill_probability_grid(double n_nodes,
                                          const util::OverlayGeometry& geometry);

/// The paper's occupancy distribution phi(mu_phi, sigma_phi).
util::PoissonBinomialNormal occupancy_model(
    double n_nodes, const util::OverlayGeometry& geometry);

/// The runtime density check: true when gamma * d_peer < d_local, i.e. the
/// advertised table is suspiciously sparse.
bool jump_table_too_sparse(double local_density, double peer_density,
                           double gamma);

/// Castro's leaf-set variant: a peer's leaf set whose mean inter-identifier
/// spacing is more than gamma times the local spacing is suspiciously sparse.
bool leaf_set_too_sparse(double local_mean_spacing, double peer_mean_spacing,
                         double gamma);

/// Analytic false-positive probability of the jump-table test:
///   Pr(gamma * d_peer < d_local)
///     = sum_d pmf_local(d) * Phi_peer(d / gamma)
/// where the local occupancy is modelled with population n_local and the
/// honest peer's occupancy with population n_peer_view.  Without suppression
/// attacks both are N; a suppression attack shrinks n_peer_view because
/// colluders hide from the honest peer's table (Section 4.1).
double density_false_positive(double gamma, double n_local,
                              double n_peer_view,
                              const util::OverlayGeometry& geometry);

/// Analytic false-negative probability:
///   Pr(gamma * d_peer >= d_local)
///     = sum_d pmf_malicious(d) * Phi_local(gamma * d)
/// where the malicious table is modelled as a legitimate table in an overlay
/// of n_attacker_pool = N * c hosts (the attacker can only fill slots with
/// colluders), and the local occupancy uses population n_local (skewed
/// downward under suppression attacks).
double density_false_negative(double gamma, double n_local,
                              double n_attacker_pool,
                              const util::OverlayGeometry& geometry);

struct GammaChoice {
    double gamma = 1.0;
    double false_positive = 0.0;
    double false_negative = 0.0;

    [[nodiscard]] double total_error() const noexcept {
        return false_positive + false_negative;
    }
};

/// Scans gammas in [lo, hi] (inclusive, `steps` points) and returns the one
/// minimising FP + FN, as in Figure 2(c) / 3(c).
GammaChoice optimal_gamma(double n_local, double n_peer_view,
                          double n_attacker_pool,
                          const util::OverlayGeometry& geometry, double lo,
                          double hi, int steps);

/// Monte Carlo ground truth for Figure 1: draws `samples` overlays of
/// n_nodes uniformly random identifiers and counts one node's filled jump
/// table slots per the standard constraint (some other node shares an
/// i-digit prefix and has digit j at position i).
util::OnlineMoments simulate_table_occupancy(
    int n_nodes, const util::OverlayGeometry& geometry, int samples,
    util::Rng& rng);

}  // namespace concilium::overlay
