// Pastry jump (routing) tables.
//
// "In overlays like Pastry and Chord, the local routing state consists of two
// logical components.  The leaf table points to the peers with the
// numerically closest identifiers ...  The jump table points to peers whose
// identifiers differ from the local one by increasing, exponentially spaced
// distances." (Section 2)
//
// A jump table has l rows and v columns; the entry in row i, column j shares
// an i-digit identifier prefix with the local host and has j as its i+1-th
// digit.  In *secure* Pastry the entry must additionally be the online host
// whose identifier is closest to the point p = local id with digit i replaced
// by j -- this constrained choice is what bounds the attacker's presence in
// routing state.

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/ids.h"

namespace concilium::overlay {

/// Index of a node in an OverlayNetwork's member list.
using MemberIndex = std::uint32_t;

class JumpTable {
  public:
    JumpTable(util::NodeId owner, util::OverlayGeometry geometry);

    [[nodiscard]] const util::NodeId& owner() const noexcept { return owner_; }
    [[nodiscard]] const util::OverlayGeometry& geometry() const noexcept {
        return geometry_;
    }

    [[nodiscard]] std::optional<MemberIndex> slot(int row, int col) const;
    void set_slot(int row, int col, MemberIndex member);
    void clear_slot(int row, int col);

    /// Number of occupied slots.
    [[nodiscard]] int occupancy() const noexcept { return occupancy_; }

    /// Occupied fraction of the full l x v grid -- the d of the density test.
    [[nodiscard]] double density() const noexcept;

    /// All occupied (row, col, member) triples.
    struct Entry {
        int row;
        int col;
        MemberIndex member;
    };
    [[nodiscard]] std::vector<Entry> entries() const;

    /// True when `candidate` may legally occupy (row, col) for this owner:
    /// shares a `row`-digit prefix with the owner and has digit `col` at
    /// position `row`.
    [[nodiscard]] bool satisfies_standard_constraint(
        int row, int col, const util::NodeId& candidate) const;

    /// The secure-routing target point p: owner's id with digit `row`
    /// replaced by `col` (Section 2).
    [[nodiscard]] util::NodeId constraint_point(int row, int col) const;

  private:
    [[nodiscard]] std::size_t index_of(int row, int col) const;

    util::NodeId owner_;
    util::OverlayGeometry geometry_;
    std::vector<std::optional<MemberIndex>> slots_;
    int occupancy_ = 0;
};

}  // namespace concilium::overlay
