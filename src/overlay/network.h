// A secure Pastry overlay instance.
//
// OverlayNetwork holds the global membership (certificates issued by the CA)
// and constructs, for every member, a leaf set plus two jump tables:
//
//   * the *secure* table, whose (i, j) entry is the live host closest to the
//     point p = local id with digit i replaced by j (Castro's constrained
//     routing, Section 2) -- Concilium messages always travel on these; and
//   * a *standard* table, with an unconstrained (proximity-style) choice
//     among all hosts matching the (prefix, digit) rule.
//
// The evaluation does not model churn ("We did not model fluctuating machine
// availability", Section 4.2), so tables are built once from the global view;
// the protocol logic layered on top never peeks at global state.

#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "crypto/certificates.h"
#include "net/topology.h"
#include "overlay/jump_table.h"
#include "overlay/leaf_set.h"
#include "util/ids.h"
#include "util/rng.h"

namespace concilium::overlay {

struct Member {
    crypto::NodeCertificate certificate;
    crypto::KeyPair keys;  ///< retained by the simulated host itself

    [[nodiscard]] const util::NodeId& id() const noexcept {
        return certificate.node_id;
    }
    [[nodiscard]] net::RouterId ip() const noexcept { return certificate.ip; }
};

struct OverlayParams {
    util::OverlayGeometry geometry{.digits = 32};
    int leaf_half = LeafSet::kDefaultHalf;
};

class OverlayNetwork {
  public:
    /// Builds leaf sets and both jump tables for every member.  Members must
    /// have distinct identifiers.  rng drives the standard tables'
    /// unconstrained entry choice only; the secure tables are deterministic.
    OverlayNetwork(std::vector<Member> members, OverlayParams params,
                   util::Rng& rng);

    [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
    [[nodiscard]] const Member& member(MemberIndex i) const {
        return members_.at(i);
    }
    [[nodiscard]] const OverlayParams& params() const noexcept {
        return params_;
    }

    [[nodiscard]] std::optional<MemberIndex> index_of(
        const util::NodeId& id) const;

    [[nodiscard]] const LeafSet& leaf_set(MemberIndex i) const {
        return leaf_sets_.at(i);
    }
    [[nodiscard]] const JumpTable& secure_table(MemberIndex i) const {
        return secure_tables_.at(i);
    }
    [[nodiscard]] const JumpTable& standard_table(MemberIndex i) const {
        return standard_tables_.at(i);
    }

    /// All distinct routing peers of member i: secure-table entries plus the
    /// leaf set.  These are the leaves of i's tomography tree T_H.
    [[nodiscard]] const std::vector<MemberIndex>& routing_peers(
        MemberIndex i) const {
        return routing_peers_.at(i);
    }

    /// The member whose identifier is numerically closest to key (ring
    /// distance, ties to the clockwise side).
    [[nodiscard]] MemberIndex root_of(const util::NodeId& key) const;

    /// Next secure-routing hop from member i toward key, or nullopt when i
    /// is already the closest node (message delivered).
    [[nodiscard]] std::optional<MemberIndex> next_hop(
        MemberIndex i, const util::NodeId& key) const;

    /// Full secure route from member i to the root of key (inclusive of
    /// both endpoints).  Throws std::runtime_error if routing fails to
    /// converge (cannot happen in a well-formed static overlay).
    [[nodiscard]] std::vector<MemberIndex> route(MemberIndex i,
                                                 const util::NodeId& key) const;

    /// Leaf-spacing population estimate for member i (Section 3.1).
    [[nodiscard]] double estimate_population(MemberIndex i) const;

  private:
    void build_leaf_sets();
    void build_tables(util::Rng& rng);
    void build_routing_peers();

    /// Members whose ids share the first `digits` digits of p, as a
    /// contiguous range [first, last) of sorted-order positions.
    [[nodiscard]] std::pair<std::size_t, std::size_t> prefix_range(
        const util::NodeId& p, int digits) const;

    OverlayParams params_;
    std::vector<Member> members_;
    std::vector<MemberIndex> sorted_;  ///< member indices in id order
    /// NodeId -> member index, the one sanctioned resolution point where
    /// identifiers enter from the wire.
    std::unordered_map<util::NodeId, MemberIndex, util::NodeIdHash>
        by_id_;  // hot-path-lint: boundary
    std::vector<LeafSet> leaf_sets_;
    std::vector<JumpTable> secure_tables_;
    std::vector<JumpTable> standard_tables_;
    std::vector<std::vector<MemberIndex>> routing_peers_;
};

/// Convenience: admits `count` hosts (drawn from end_hosts without
/// replacement) through the CA and builds the overlay.
OverlayNetwork build_overlay_from_hosts(
    const std::vector<net::RouterId>& hosts, std::size_t count,
    crypto::CertificateAuthority& ca, OverlayParams params, util::Rng& rng);

}  // namespace concilium::overlay
