// Chord: the second overlay substrate.
//
// The paper names Chord alongside Pastry (Section 2) and claims its
// jump-table occupancy test "can be extended to other overlays in a
// straightforward manner" (Section 3.1).  This module substantiates that
// claim: a Chord ring with finger tables and successor lists, plus the
// direct analogue of the occupancy test.
//
// In Chord, finger i of node n points at the first node clockwise of
// n + 2^i.  Neighbouring fingers often collapse onto the same node, and the
// number of *distinct* fingers plays exactly the role jump-table occupancy
// plays in Pastry: finger i is distinct from finger i-1 iff some node lies
// in the half-open ring interval (n + 2^(i-1), n + 2^i], which happens with
// probability 1 - (1 - 2^(i-1)/2^160)^(N-1) -- Equation 1's twin.  Distinct
// counts are again a Poisson-binomial sum, so the same normal approximation,
// the same gamma test, and the same false positive/negative analysis apply
// verbatim.

#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "overlay/network.h"
#include "util/ids.h"
#include "util/stats.h"

namespace concilium::overlay {

class ChordNetwork {
  public:
    /// Number of finger-table rows (the full 160-bit ring).
    static constexpr int kFingers = 160;

    struct ChordParams {
        int successor_list_length = 8;
    };

    /// Builds the ring: successor lists and finger tables for every member.
    ChordNetwork(std::vector<Member> members, ChordParams params);

    [[nodiscard]] std::size_t size() const noexcept { return members_.size(); }
    [[nodiscard]] const Member& member(MemberIndex i) const {
        return members_.at(i);
    }

    /// The i-th successor list entry of member m.
    [[nodiscard]] const std::vector<MemberIndex>& successors(
        MemberIndex m) const {
        return successors_.at(m);
    }

    /// finger(m, i): the first member clockwise of member m's id + 2^i,
    /// for i in [0, kFingers).
    [[nodiscard]] MemberIndex finger(MemberIndex m, int i) const;

    /// Number of distinct nodes among m's fingers, excluding m itself --
    /// the Chord analogue of jump-table occupancy.
    [[nodiscard]] int distinct_fingers(MemberIndex m) const;

    /// The member responsible for (first clockwise of or equal to) key.
    [[nodiscard]] MemberIndex successor_of(const util::NodeId& key) const;

    /// Greedy Chord routing: repeatedly jump to the closest preceding
    /// finger.  Returns the hop sequence ending at the key's successor.
    [[nodiscard]] std::vector<MemberIndex> route(MemberIndex from,
                                                 const util::NodeId& key) const;

  private:
    std::vector<Member> members_;
    ChordParams params_;
    std::vector<MemberIndex> sorted_;  ///< indices in ring order
    std::vector<std::vector<MemberIndex>> successors_;
    std::vector<std::vector<MemberIndex>> fingers_;  ///< [member][finger row]
};

/// Probability that finger i is distinct from finger i-1 in an N-node ring
/// (for i = 0: that the interval (n, n+1] holds a node, which is ~0):
/// 1 - (1 - 2^(i-1) / 2^160)^(N-1).
double chord_finger_distinct_probability(int finger, double n_nodes);

/// Distribution of the distinct-finger count: the Chord twin of
/// overlay::occupancy_model.
util::PoissonBinomialNormal chord_finger_model(double n_nodes);

/// Analytic density-test error rates, reusing the Pastry machinery's shape:
/// a malicious node advertising only colluders has the distinct-finger
/// distribution of an N*c-node ring.
double chord_density_false_positive(double gamma, double n_local,
                                    double n_peer_view);
double chord_density_false_negative(double gamma, double n_local,
                                    double n_attacker_pool);

}  // namespace concilium::overlay
