#include "overlay/chord.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <unordered_set>

namespace concilium::overlay {

namespace {

/// id + 2^bit mod 2^160, big-endian byte arithmetic.
util::NodeId add_power_of_two(const util::NodeId& id, int bit) {
    auto bytes = id.bytes();
    int byte_index = util::NodeId::kBytes - 1 - bit / 8;
    unsigned carry = 1u << (bit % 8);
    while (carry != 0 && byte_index >= 0) {
        const unsigned sum = bytes[static_cast<std::size_t>(byte_index)] + carry;
        bytes[static_cast<std::size_t>(byte_index)] =
            static_cast<std::uint8_t>(sum & 0xff);
        carry = sum >> 8;
        --byte_index;
    }
    return util::NodeId(bytes);
}

/// x in the cyclic half-open interval (a, b].
bool in_open_closed(const util::NodeId& a, const util::NodeId& x,
                    const util::NodeId& b) {
    if (a < b) return a < x && (x < b || x == b);
    return a < x || x < b || x == b;
}

}  // namespace

ChordNetwork::ChordNetwork(std::vector<Member> members, ChordParams params)
    : members_(std::move(members)), params_(params) {
    if (members_.empty()) {
        throw std::invalid_argument("ChordNetwork: no members");
    }
    if (params_.successor_list_length < 1) {
        throw std::invalid_argument("ChordNetwork: bad successor list length");
    }
    const std::size_t n = members_.size();
    sorted_.resize(n);
    for (MemberIndex i = 0; i < n; ++i) sorted_[i] = i;
    std::sort(sorted_.begin(), sorted_.end(),
              [this](MemberIndex a, MemberIndex b) {
                  return members_[a].id() < members_[b].id();
              });

    // Successor lists straight off the ring.
    std::vector<std::size_t> position(n);
    for (std::size_t k = 0; k < n; ++k) position[sorted_[k]] = k;
    successors_.resize(n);
    const auto list_len = static_cast<std::size_t>(
        std::min<std::size_t>(params_.successor_list_length, n - 1));
    for (MemberIndex m = 0; m < n; ++m) {
        for (std::size_t s = 1; s <= list_len; ++s) {
            successors_[m].push_back(sorted_[(position[m] + s) % n]);
        }
    }

    // Finger tables: finger i = successor_of(id + 2^i).
    fingers_.resize(n);
    for (MemberIndex m = 0; m < n; ++m) {
        fingers_[m].reserve(kFingers);
        for (int i = 0; i < kFingers; ++i) {
            fingers_[m].push_back(
                successor_of(add_power_of_two(members_[m].id(), i)));
        }
    }
}

MemberIndex ChordNetwork::finger(MemberIndex m, int i) const {
    if (i < 0 || i >= kFingers) {
        throw std::out_of_range("ChordNetwork::finger: bad row");
    }
    return fingers_.at(m).at(static_cast<std::size_t>(i));
}

int ChordNetwork::distinct_fingers(MemberIndex m) const {
    std::unordered_set<MemberIndex> distinct;
    for (const MemberIndex f : fingers_.at(m)) {
        if (f != m) distinct.insert(f);
    }
    return static_cast<int>(distinct.size());
}

MemberIndex ChordNetwork::successor_of(const util::NodeId& key) const {
    // First member with id >= key, wrapping to the ring's smallest id.
    const auto cmp = [this](MemberIndex m, const util::NodeId& id) {
        return members_[m].id() < id;
    };
    const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), key, cmp);
    return it == sorted_.end() ? sorted_.front() : *it;
}

std::vector<MemberIndex> ChordNetwork::route(MemberIndex from,
                                             const util::NodeId& key) const {
    const MemberIndex target = successor_of(key);
    std::vector<MemberIndex> hops{from};
    MemberIndex cur = from;
    for (int step = 0; cur != target; ++step) {
        if (step > 2 * kFingers) {
            throw std::runtime_error("ChordNetwork::route: did not converge");
        }
        const MemberIndex next_on_ring = successors_.at(cur).empty()
                                             ? cur
                                             : successors_.at(cur).front();
        if (in_open_closed(members_[cur].id(), key,
                           members_[next_on_ring].id())) {
            cur = next_on_ring;  // key owned by the immediate successor
        } else {
            // Closest preceding finger: the highest finger strictly inside
            // (cur, key).
            MemberIndex best = next_on_ring;
            for (int i = kFingers - 1; i >= 0; --i) {
                const MemberIndex f = fingers_.at(cur)[static_cast<std::size_t>(i)];
                if (f == cur) continue;
                if (in_open_closed(members_[cur].id(), members_[f].id(), key) &&
                    !(members_[f].id() == key)) {
                    best = f;
                    break;
                }
            }
            if (best == cur) break;  // degenerate single-node ring
            cur = best;
        }
        hops.push_back(cur);
    }
    return hops;
}

double chord_finger_distinct_probability(int finger, double n_nodes) {
    if (finger < 0 || finger >= ChordNetwork::kFingers) {
        throw std::out_of_range("chord_finger_distinct_probability: row");
    }
    if (n_nodes <= 1.0) return 0.0;
    if (finger == 0) return 1.0;  // finger 0 always names one distinct node
    // Interval (n + 2^(i-1), n + 2^i] has ring-fraction 2^(i-1) / 2^160.
    const double fraction = std::exp2(static_cast<double>(finger - 1) - 160.0);
    const double log_miss = (n_nodes - 1.0) * std::log1p(-fraction);
    return -std::expm1(log_miss);
}

util::PoissonBinomialNormal chord_finger_model(double n_nodes) {
    std::vector<double> grid;
    grid.reserve(ChordNetwork::kFingers);
    for (int i = 0; i < ChordNetwork::kFingers; ++i) {
        grid.push_back(chord_finger_distinct_probability(i, n_nodes));
    }
    return util::PoissonBinomialNormal(grid);
}

namespace {

double chord_density_error(double gamma, double n_pmf_source,
                           double n_cdf_source, bool false_positive) {
    const auto pmf_model = chord_finger_model(n_pmf_source);
    const auto cdf_model = chord_finger_model(n_cdf_source);
    double total = 0.0;
    for (int d = 0; d <= ChordNetwork::kFingers; ++d) {
        const double p = pmf_model.pmf(d);
        if (p <= 0.0) continue;
        total += p * cdf_model.cdf(false_positive
                                       ? static_cast<double>(d) / gamma
                                       : gamma * static_cast<double>(d));
    }
    return total;
}

}  // namespace

double chord_density_false_positive(double gamma, double n_local,
                                    double n_peer_view) {
    // Pr(gamma * d_peer < d_local), both honest.
    return chord_density_error(gamma, n_local, n_peer_view, true);
}

double chord_density_false_negative(double gamma, double n_local,
                                    double n_attacker_pool) {
    // Pr(gamma * d_peer >= d_local), peer drawn from the colluder pool.
    return chord_density_error(gamma, n_attacker_pool, n_local, false);
}

}  // namespace concilium::overlay
