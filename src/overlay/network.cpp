#include "overlay/network.h"

#include <algorithm>
#include <stdexcept>

namespace concilium::overlay {

namespace {

/// Lowest / highest identifiers sharing the first `digits` digits of p.
std::pair<util::NodeId, util::NodeId> prefix_bounds(const util::NodeId& p,
                                                    int digits) {
    auto lo = p.bytes();
    auto hi = p.bytes();
    for (int d = digits; d < util::NodeId::kDigits; ++d) {
        const std::size_t byte = static_cast<std::size_t>(d) / 2;
        if (d % 2 == 0) {
            lo[byte] &= 0x0f;
            hi[byte] |= 0xf0;
        } else {
            lo[byte] &= 0xf0;
            hi[byte] |= 0x0f;
        }
    }
    return {util::NodeId(lo), util::NodeId(hi)};
}

}  // namespace

OverlayNetwork::OverlayNetwork(std::vector<Member> members,
                               OverlayParams params, util::Rng& rng)
    : params_(params), members_(std::move(members)) {
    if (members_.empty()) {
        throw std::invalid_argument("OverlayNetwork: no members");
    }
    sorted_.resize(members_.size());
    for (MemberIndex i = 0; i < members_.size(); ++i) sorted_[i] = i;
    std::sort(sorted_.begin(), sorted_.end(),
              [this](MemberIndex a, MemberIndex b) {
                  return members_[a].id() < members_[b].id();
              });
    by_id_.reserve(members_.size());
    for (MemberIndex i = 0; i < members_.size(); ++i) {
        if (!by_id_.emplace(members_[i].id(), i).second) {
            throw std::invalid_argument("OverlayNetwork: duplicate identifier");
        }
    }
    build_leaf_sets();
    build_tables(rng);
    build_routing_peers();
}

std::optional<MemberIndex> OverlayNetwork::index_of(
    const util::NodeId& id) const {
    const auto it = by_id_.find(id);
    if (it == by_id_.end()) return std::nullopt;
    return it->second;
}

void OverlayNetwork::build_leaf_sets() {
    const std::size_t n = members_.size();
    leaf_sets_.reserve(n);
    for (MemberIndex i = 0; i < n; ++i) {
        leaf_sets_.emplace_back(members_[i].id(), params_.leaf_half);
    }
    // Positions of each member in ring order.
    std::vector<std::size_t> position(n);
    for (std::size_t k = 0; k < n; ++k) position[sorted_[k]] = k;
    const auto half = static_cast<std::size_t>(params_.leaf_half);
    for (MemberIndex i = 0; i < n; ++i) {
        const std::size_t k = position[i];
        std::vector<MemberIndex> cw;
        std::vector<MemberIndex> ccw;
        for (std::size_t step = 1; step <= half && step < n; ++step) {
            cw.push_back(sorted_[(k + step) % n]);
            ccw.push_back(sorted_[(k + n - step) % n]);
        }
        leaf_sets_[i].set_successors(std::move(cw));
        leaf_sets_[i].set_predecessors(std::move(ccw));
    }
}

std::pair<std::size_t, std::size_t> OverlayNetwork::prefix_range(
    const util::NodeId& p, int digits) const {
    const auto [lo, hi] = prefix_bounds(p, digits);
    const auto cmp = [this](MemberIndex m, const util::NodeId& id) {
        return members_[m].id() < id;
    };
    const auto first = std::lower_bound(sorted_.begin(), sorted_.end(), lo, cmp);
    // upper bound: first id strictly greater than hi
    auto last = std::lower_bound(first, sorted_.end(), hi, cmp);
    if (last != sorted_.end() && members_[*last].id() == hi) ++last;
    return {static_cast<std::size_t>(first - sorted_.begin()),
            static_cast<std::size_t>(last - sorted_.begin())};
}

void OverlayNetwork::build_tables(util::Rng& rng) {
    const std::size_t n = members_.size();
    secure_tables_.reserve(n);
    standard_tables_.reserve(n);
    for (MemberIndex i = 0; i < n; ++i) {
        const util::NodeId& self = members_[i].id();
        JumpTable secure(self, params_.geometry);
        JumpTable standard(self, params_.geometry);
        for (int row = 0; row < params_.geometry.rows(); ++row) {
            // Any candidate for this row shares a row-digit prefix with us;
            // once we are alone in that prefix block, all deeper rows are
            // empty too.
            const auto [row_first, row_last] = prefix_range(self, row);
            if (row_last - row_first <= 1) break;
            for (int col = 0; col < params_.geometry.columns(); ++col) {
                const util::NodeId p = self.with_digit(row, col);
                const auto [first, last] = prefix_range(p, row + 1);
                if (first == last) continue;

                // Secure entry: the member closest to p (Section 2).  The
                // block is a contiguous id range containing p's prefix, so
                // the nearest member sits next to p's sorted position.
                const auto cmp = [this](MemberIndex m, const util::NodeId& id) {
                    return members_[m].id() < id;
                };
                const auto pos_it = std::lower_bound(
                    sorted_.begin() + static_cast<std::ptrdiff_t>(first),
                    sorted_.begin() + static_cast<std::ptrdiff_t>(last), p, cmp);
                const auto pos = static_cast<std::size_t>(pos_it - sorted_.begin());
                std::optional<MemberIndex> best;
                util::NodeId best_dist;
                for (std::size_t c = (pos > first ? pos - 1 : first);
                     c < std::min(pos + 2, last); ++c) {
                    const MemberIndex m = sorted_[c];
                    if (m == i) continue;
                    const util::NodeId d = members_[m].id().ring_distance(p);
                    if (!best || d < best_dist) {
                        best = m;
                        best_dist = d;
                    }
                }
                if (best) secure.set_slot(row, col, *best);

                // Standard entry: an unconstrained choice within the block
                // (proximity selection is modelled as a seeded random pick).
                const std::size_t block = last - first;
                const bool self_in_block = col == self.digit(row);
                if (block > (self_in_block ? 1u : 0u)) {
                    MemberIndex choice = i;
                    while (choice == i) {
                        choice = sorted_[first + rng.uniform_index(block)];
                    }
                    standard.set_slot(row, col, choice);
                }
            }
        }
        secure_tables_.push_back(std::move(secure));
        standard_tables_.push_back(std::move(standard));
    }
}

void OverlayNetwork::build_routing_peers() {
    const std::size_t n = members_.size();
    routing_peers_.resize(n);
    for (MemberIndex i = 0; i < n; ++i) {
        std::vector<MemberIndex> peers;
        for (const JumpTable::Entry& e : secure_tables_[i].entries()) {
            peers.push_back(e.member);
        }
        const auto leaves = leaf_sets_[i].all();
        peers.insert(peers.end(), leaves.begin(), leaves.end());
        std::sort(peers.begin(), peers.end());
        peers.erase(std::unique(peers.begin(), peers.end()), peers.end());
        routing_peers_[i] = std::move(peers);
    }
}

MemberIndex OverlayNetwork::root_of(const util::NodeId& key) const {
    // Nearest by ring distance; candidates are the sorted neighbors of key.
    const auto cmp = [this](MemberIndex m, const util::NodeId& id) {
        return members_[m].id() < id;
    };
    const auto it = std::lower_bound(sorted_.begin(), sorted_.end(), key, cmp);
    const std::size_t n = sorted_.size();
    const std::size_t pos = static_cast<std::size_t>(it - sorted_.begin());
    MemberIndex best = sorted_[pos % n];
    util::NodeId best_dist = members_[best].id().ring_distance(key);
    const MemberIndex prev = sorted_[(pos + n - 1) % n];
    const util::NodeId prev_dist = members_[prev].id().ring_distance(key);
    if (prev_dist < best_dist) best = prev;
    return best;
}

std::optional<MemberIndex> OverlayNetwork::next_hop(
    MemberIndex i, const util::NodeId& key) const {
    if (root_of(key) == i) return std::nullopt;
    const util::NodeId& self = members_[i].id();
    const int row = self.shared_prefix_digits(key);
    if (row < params_.geometry.rows()) {
        const auto slot = secure_tables_[i].slot(row, key.digit(row));
        if (slot.has_value()) return *slot;
    }
    // Rare case: empty slot.  Fall back to any routing peer that is strictly
    // closer to the key, preferring those that do not lose prefix progress.
    const util::NodeId self_dist = self.ring_distance(key);
    std::optional<MemberIndex> best;
    util::NodeId best_dist = self_dist;
    bool best_keeps_prefix = false;
    for (const MemberIndex peer : routing_peers_[i]) {
        const util::NodeId d = members_[peer].id().ring_distance(key);
        if (!(d < self_dist)) continue;
        const bool keeps =
            members_[peer].id().shared_prefix_digits(key) >= row;
        if (!best || (keeps && !best_keeps_prefix) ||
            (keeps == best_keeps_prefix && d < best_dist)) {
            best = peer;
            best_dist = d;
            best_keeps_prefix = keeps;
        }
    }
    return best;
}

std::vector<MemberIndex> OverlayNetwork::route(MemberIndex i,
                                               const util::NodeId& key) const {
    std::vector<MemberIndex> hops{i};
    MemberIndex cur = i;
    const MemberIndex root = root_of(key);
    for (int step = 0; cur != root; ++step) {
        if (step > 128) {
            throw std::runtime_error("OverlayNetwork::route: did not converge");
        }
        const auto next = next_hop(cur, key);
        if (!next.has_value()) {
            throw std::runtime_error("OverlayNetwork::route: dead end");
        }
        cur = *next;
        hops.push_back(cur);
    }
    return hops;
}

double OverlayNetwork::estimate_population(MemberIndex i) const {
    return leaf_sets_[i].estimate_population(
        [this](MemberIndex m) { return members_[m].id(); });
}

OverlayNetwork build_overlay_from_hosts(
    const std::vector<net::RouterId>& hosts, std::size_t count,
    crypto::CertificateAuthority& ca, OverlayParams params, util::Rng& rng) {
    if (count > hosts.size()) {
        throw std::invalid_argument(
            "build_overlay_from_hosts: not enough end hosts");
    }
    const auto chosen = rng.sample_indices(hosts.size(), count);
    std::vector<Member> members;
    members.reserve(count);
    for (const std::size_t h : chosen) {
        auto admission = ca.admit(hosts[h]);
        members.push_back(
            Member{std::move(admission.certificate), std::move(admission.keys)});
    }
    return OverlayNetwork(std::move(members), params, rng);
}

}  // namespace concilium::overlay
