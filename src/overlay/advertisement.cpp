#include "overlay/advertisement.h"

namespace concilium::overlay {

std::vector<std::uint8_t> LeafSetAdvertisement::signed_payload() const {
    util::ByteWriter w;
    w.node_id(owner);
    w.i64(issued_at);
    const auto side = [&w](const std::vector<LeafEntry>& entries) {
        w.u32(static_cast<std::uint32_t>(entries.size()));
        for (const LeafEntry& e : entries) {
            w.node_id(e.peer);
            w.i64(e.freshness.at);
            w.bytes(e.freshness.signature.bytes());
        }
    };
    side(successors);
    side(predecessors);
    return w.data();
}

double LeafSetAdvertisement::mean_spacing() const {
    const std::size_t count = successors.size() + predecessors.size();
    if (count == 0) return 1.0;
    const util::NodeId lo =
        predecessors.empty() ? owner : predecessors.back().peer;
    const util::NodeId hi = successors.empty() ? owner : successors.back().peer;
    const double span = util::clockwise_distance(lo, hi).as_fraction();
    return span <= 0.0 ? 1.0 : span / static_cast<double>(count);
}

std::size_t LeafSetAdvertisement::wire_bytes() const {
    return (successors.size() + predecessors.size()) *
               AdvertisedEntry::kWireBytes +
           util::NodeId::kBytes + 8 + crypto::Signature::kWireBytes;
}

std::vector<std::uint8_t> JumpTableAdvertisement::signed_payload() const {
    util::ByteWriter w;
    w.node_id(owner);
    w.i64(issued_at);
    w.f64(population_estimate);
    w.u32(static_cast<std::uint32_t>(entries.size()));
    for (const AdvertisedEntry& e : entries) {
        w.u8(static_cast<std::uint8_t>(e.row));
        w.u8(static_cast<std::uint8_t>(e.col));
        w.node_id(e.peer);
        w.u32(e.peer_ip);
        w.i64(e.freshness.at);
        w.bytes(e.freshness.signature.bytes());
    }
    return w.data();
}

double JumpTableAdvertisement::density(
    const util::OverlayGeometry& geometry) const {
    return static_cast<double>(entries.size()) /
           static_cast<double>(geometry.table_slots());
}

std::size_t JumpTableAdvertisement::wire_bytes() const {
    // Per-entry cost follows the paper exactly (144 bytes, see
    // AdvertisedEntry::kWireBytes); the envelope adds the owner identifier,
    // issue time, population estimate, and the owner's own signature.
    return entries.size() * AdvertisedEntry::kWireBytes +
           util::NodeId::kBytes /* owner */ + 8 /* issued_at */ +
           8 /* population estimate */ + crypto::Signature::kWireBytes;
}

}  // namespace concilium::overlay
