// Signed routing-state advertisements.
//
// "hosts exchange their routing tables so that they can determine the first
// few hops that a locally forwarded message will take" (Section 3).  An
// advertisement carries, for every occupied jump-table slot, the peer's
// identifier and a *signed freshness timestamp* produced by that peer
// (Section 3.1's defence against inflation attacks: identifiers harvested
// from departed nodes come with stale timestamps and are rejected).  The
// whole advertisement is signed by its owner so it cannot be spoofed or
// later disavowed.

#pragma once

#include <cstdint>
#include <vector>

#include "crypto/keys.h"
#include "crypto/tokens.h"
#include "overlay/network.h"
#include "util/ids.h"
#include "util/serialize.h"
#include "util/time.h"

namespace concilium::overlay {

struct AdvertisedEntry {
    int row = 0;
    int col = 0;
    util::NodeId peer;
    net::RouterId peer_ip = net::kInvalidRouter;
    crypto::SignedTimestamp freshness;  ///< signed by `peer` itself

    /// Section 4.4: "Each routing entry contains a 16 byte node identifier
    /// and a 4 byte freshness timestamp.  Using PSS-R with 1024 bit public
    /// keys, both quantities plus a signature consume 144 bytes" (PSS-R
    /// message recovery folds the 20 payload bytes into the signature).
    static constexpr std::size_t kWireBytes = 144;
};

struct JumpTableAdvertisement {
    util::NodeId owner;
    util::SimTime issued_at = 0;
    /// Population estimate from the owner's leaf spacing, included so that
    /// receivers can sanity-check density claims against the same N.
    double population_estimate = 0.0;
    std::vector<AdvertisedEntry> entries;
    crypto::Signature signature;  ///< by owner, over signed_payload()

    [[nodiscard]] std::vector<std::uint8_t> signed_payload() const;

    /// Advertised occupancy fraction d_peer for an l x v geometry.
    [[nodiscard]] double density(const util::OverlayGeometry& geometry) const;

    /// Modelled wire size (Section 4.4): 144 bytes for identifier + freshness
    /// timestamp + signature amortisation per entry, as in the paper.
    [[nodiscard]] std::size_t wire_bytes() const;
};

/// A leaf-set advertisement, subject to Castro's density test: "By comparing
/// the average inter-identifier spacing in its own leaf set to that of a
/// peer's leaf set, a host can identify advertised leaf sets that are too
/// sparse" (Section 2).  Entries carry the same signed freshness timestamps
/// as jump-table entries so departed neighbours cannot be re-advertised.
struct LeafEntry {
    util::NodeId peer;
    crypto::SignedTimestamp freshness;
};

struct LeafSetAdvertisement {
    util::NodeId owner;
    util::SimTime issued_at = 0;
    std::vector<LeafEntry> successors;    ///< clockwise, nearest first
    std::vector<LeafEntry> predecessors;  ///< counter-clockwise, nearest first
    crypto::Signature signature;

    [[nodiscard]] std::vector<std::uint8_t> signed_payload() const;

    /// Mean inter-identifier ring spacing implied by the advertisement
    /// (the quantity Castro's test compares).
    [[nodiscard]] double mean_spacing() const;

    /// 144 modelled bytes per entry, like jump-table entries.
    [[nodiscard]] std::size_t wire_bytes() const;
};

/// Builds member `who`'s leaf-set advertisement.
template <typename ProbeTimeFn>
LeafSetAdvertisement make_leaf_advertisement(const OverlayNetwork& net,
                                             MemberIndex who,
                                             util::SimTime now,
                                             ProbeTimeFn&& probe_time_of) {
    LeafSetAdvertisement ad;
    ad.owner = net.member(who).id();
    ad.issued_at = now;
    const auto fill = [&](auto span, std::vector<LeafEntry>& out) {
        for (const MemberIndex m : span) {
            const Member& peer = net.member(m);
            out.push_back(LeafEntry{
                peer.id(), crypto::make_signed_timestamp(
                               peer.id(), probe_time_of(m), peer.keys)});
        }
    };
    fill(net.leaf_set(who).successors(), ad.successors);
    fill(net.leaf_set(who).predecessors(), ad.predecessors);
    ad.signature = net.member(who).keys.sign(ad.signed_payload());
    return ad;
}

/// Builds member `who`'s advertisement of its secure jump table.  Freshness
/// timestamps are signed by each referenced peer as of `probe_time_of(peer)`
/// (in the live protocol they piggyback on availability-probe responses).
template <typename ProbeTimeFn>
JumpTableAdvertisement make_advertisement(const OverlayNetwork& net,
                                          MemberIndex who, util::SimTime now,
                                          ProbeTimeFn&& probe_time_of) {
    JumpTableAdvertisement ad;
    ad.owner = net.member(who).id();
    ad.issued_at = now;
    ad.population_estimate = net.estimate_population(who);
    for (const JumpTable::Entry& e : net.secure_table(who).entries()) {
        const Member& peer = net.member(e.member);
        AdvertisedEntry entry;
        entry.row = e.row;
        entry.col = e.col;
        entry.peer = peer.id();
        entry.peer_ip = peer.ip();
        entry.freshness = crypto::make_signed_timestamp(
            peer.id(), probe_time_of(e.member), peer.keys);
        ad.entries.push_back(entry);
    }
    ad.signature = net.member(who).keys.sign(ad.signed_payload());
    return ad;
}

}  // namespace concilium::overlay
