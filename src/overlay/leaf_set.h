// Pastry leaf sets.
//
// A leaf set points to the `half` numerically closest peers on each side of
// the local identifier on the ring.  Concilium uses leaf sets in three ways:
// as the last routing hop, as the input to Castro's leaf-set density test,
// and as the basis of the node-count estimator ("Nodes can estimate N by
// inspecting the inter-identifier spacing in their leaf sets", Section 3.1).

#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "overlay/jump_table.h"
#include "util/ids.h"

namespace concilium::overlay {

class LeafSet {
  public:
    /// The paper's bandwidth model assumes 16 leaf nodes (Section 4.4).
    static constexpr int kDefaultHalf = 8;

    LeafSet(util::NodeId owner, int half = kDefaultHalf);

    [[nodiscard]] const util::NodeId& owner() const noexcept { return owner_; }
    [[nodiscard]] int half() const noexcept { return half_; }

    /// Members on the clockwise (successor) side, nearest first.
    [[nodiscard]] std::span<const MemberIndex> successors() const noexcept {
        return cw_;
    }
    /// Members on the counter-clockwise (predecessor) side, nearest first.
    [[nodiscard]] std::span<const MemberIndex> predecessors() const noexcept {
        return ccw_;
    }
    [[nodiscard]] std::vector<MemberIndex> all() const;
    [[nodiscard]] std::size_t size() const noexcept {
        return cw_.size() + ccw_.size();
    }

    void set_successors(std::vector<MemberIndex> members);
    void set_predecessors(std::vector<MemberIndex> members);

    /// Mean inter-identifier ring spacing across the set (as a fraction of
    /// the ring), given a resolver from member index to identifier.  This is
    /// the quantity Castro's density test compares between peers.
    template <typename Resolver>
    [[nodiscard]] double mean_spacing(Resolver&& id_of) const {
        if (size() == 0) return 1.0;
        // Spacing = ring span from furthest predecessor to furthest
        // successor, divided by the number of spanned gaps.
        const util::NodeId lo = ccw_.empty() ? owner_ : id_of(ccw_.back());
        const util::NodeId hi = cw_.empty() ? owner_ : id_of(cw_.back());
        const double span = util::clockwise_distance(lo, hi).as_fraction();
        const auto gaps = static_cast<double>(size());
        return span <= 0.0 ? 1.0 : span / gaps;
    }

    /// Estimates the total overlay population from leaf spacing: identifiers
    /// are uniform, so N ~= 1 / mean_spacing.
    template <typename Resolver>
    [[nodiscard]] double estimate_population(Resolver&& id_of) const {
        const double spacing = mean_spacing(id_of);
        return spacing <= 0.0 ? 0.0 : 1.0 / spacing;
    }

  private:
    util::NodeId owner_;
    int half_;
    std::vector<MemberIndex> cw_;
    std::vector<MemberIndex> ccw_;
};

}  // namespace concilium::overlay
