#include "overlay/density.h"

#include <cmath>
#include <stdexcept>

#include "util/metrics.h"

namespace concilium::overlay {

double slot_fill_probability(int row, double n_nodes,
                             const util::OverlayGeometry& geometry) {
    if (row < 0 || row >= geometry.rows()) {
        throw std::out_of_range("slot_fill_probability: row out of range");
    }
    if (n_nodes <= 1.0) return 0.0;
    const double v = geometry.kDigitBase;
    // log1p-based form keeps precision for deep rows where (1/v)^(i+1) is
    // denormal-small.
    const double log_miss =
        (n_nodes - 1.0) * std::log1p(-std::pow(1.0 / v, row + 1));
    return -std::expm1(log_miss);
}

std::vector<double> fill_probability_grid(
    double n_nodes, const util::OverlayGeometry& geometry) {
    std::vector<double> grid;
    grid.reserve(static_cast<std::size_t>(geometry.table_slots()));
    for (int row = 0; row < geometry.rows(); ++row) {
        const double p = slot_fill_probability(row, n_nodes, geometry);
        for (int col = 0; col < geometry.columns(); ++col) {
            grid.push_back(p);
        }
    }
    return grid;
}

util::PoissonBinomialNormal occupancy_model(
    double n_nodes, const util::OverlayGeometry& geometry) {
    const auto grid = fill_probability_grid(n_nodes, geometry);
    return util::PoissonBinomialNormal(grid);
}

bool jump_table_too_sparse(double local_density, double peer_density,
                           double gamma) {
    if (gamma < 1.0) {
        throw std::invalid_argument("jump_table_too_sparse: gamma must be >= 1");
    }
    using util::metrics::Registry;
    static auto& tests = Registry::global().counter("overlay.density_tests");
    static auto& rejections =
        Registry::global().counter("overlay.density_rejections");
    tests.add(1);
    const bool sparse = gamma * peer_density < local_density;
    if (sparse) rejections.add(1);
    return sparse;
}

bool leaf_set_too_sparse(double local_mean_spacing, double peer_mean_spacing,
                         double gamma) {
    if (gamma < 1.0) {
        throw std::invalid_argument("leaf_set_too_sparse: gamma must be >= 1");
    }
    using util::metrics::Registry;
    static auto& tests = Registry::global().counter("overlay.leaf_density_tests");
    static auto& rejections =
        Registry::global().counter("overlay.leaf_density_rejections");
    tests.add(1);
    // Sparse leaf set == large spacing; suspicious when the peer's spacing
    // exceeds gamma times ours.
    const bool sparse = peer_mean_spacing > gamma * local_mean_spacing;
    if (sparse) rejections.add(1);
    return sparse;
}

double density_false_positive(double gamma, double n_local,
                              double n_peer_view,
                              const util::OverlayGeometry& geometry) {
    static auto& evals = util::metrics::Registry::global().counter(
        "overlay.density_model_evaluations");
    evals.add(1);
    const auto local = occupancy_model(n_local, geometry);
    const auto peer = occupancy_model(n_peer_view, geometry);
    const int slots = geometry.table_slots();
    double fp = 0.0;
    for (int d = 0; d <= slots; ++d) {
        const double p_local = local.pmf(d);
        if (p_local <= 0.0) continue;
        fp += p_local * peer.cdf(static_cast<double>(d) / gamma);
    }
    return fp;
}

double density_false_negative(double gamma, double n_local,
                              double n_attacker_pool,
                              const util::OverlayGeometry& geometry) {
    static auto& evals = util::metrics::Registry::global().counter(
        "overlay.density_model_evaluations");
    evals.add(1);
    const auto local = occupancy_model(n_local, geometry);
    const auto malicious = occupancy_model(n_attacker_pool, geometry);
    const int slots = geometry.table_slots();
    double fn = 0.0;
    for (int d = 0; d <= slots; ++d) {
        const double p_mal = malicious.pmf(d);
        if (p_mal <= 0.0) continue;
        fn += p_mal * local.cdf(gamma * static_cast<double>(d));
    }
    return fn;
}

GammaChoice optimal_gamma(double n_local, double n_peer_view,
                          double n_attacker_pool,
                          const util::OverlayGeometry& geometry, double lo,
                          double hi, int steps) {
    if (!(hi >= lo) || steps < 2 || lo < 1.0) {
        throw std::invalid_argument("optimal_gamma: bad scan range");
    }
    GammaChoice best;
    bool have_best = false;
    for (int s = 0; s < steps; ++s) {
        const double gamma =
            lo + (hi - lo) * static_cast<double>(s) / (steps - 1);
        GammaChoice c;
        c.gamma = gamma;
        c.false_positive =
            density_false_positive(gamma, n_local, n_peer_view, geometry);
        c.false_negative =
            density_false_negative(gamma, n_local, n_attacker_pool, geometry);
        if (!have_best || c.total_error() < best.total_error()) {
            best = c;
            have_best = true;
        }
    }
    return best;
}

util::OnlineMoments simulate_table_occupancy(
    int n_nodes, const util::OverlayGeometry& geometry, int samples,
    util::Rng& rng) {
    if (n_nodes < 2 || samples < 1) {
        throw std::invalid_argument("simulate_table_occupancy: bad arguments");
    }
    static auto& sampled =
        util::metrics::Registry::global().counter("overlay.occupancy_samples");
    sampled.add(samples);
    util::OnlineMoments occupancy;
    std::vector<bool> filled(
        static_cast<std::size_t>(geometry.table_slots()));
    for (int s = 0; s < samples; ++s) {
        const util::NodeId self = util::NodeId::random(rng);
        std::fill(filled.begin(), filled.end(), false);
        int count = 0;
        for (int other = 0; other + 1 < n_nodes; ++other) {
            const util::NodeId id = util::NodeId::random(rng);
            const int row = self.shared_prefix_digits(id);
            if (row >= geometry.rows()) continue;  // duplicate-prefix freak
            const int col = id.digit(row);
            const std::size_t slot =
                static_cast<std::size_t>(row) *
                    static_cast<std::size_t>(geometry.columns()) +
                static_cast<std::size_t>(col);
            if (!filled[slot]) {
                filled[slot] = true;
                ++count;
            }
        }
        occupancy.add(static_cast<double>(count));
    }
    return occupancy;
}

}  // namespace concilium::overlay
