#include "overlay/leaf_set.h"

#include <stdexcept>

namespace concilium::overlay {

LeafSet::LeafSet(util::NodeId owner, int half) : owner_(owner), half_(half) {
    if (half < 1) {
        throw std::invalid_argument("LeafSet: half must be positive");
    }
}

std::vector<MemberIndex> LeafSet::all() const {
    std::vector<MemberIndex> out;
    out.reserve(size());
    out.insert(out.end(), ccw_.begin(), ccw_.end());
    out.insert(out.end(), cw_.begin(), cw_.end());
    return out;
}

void LeafSet::set_successors(std::vector<MemberIndex> members) {
    if (members.size() > static_cast<std::size_t>(half_)) {
        throw std::invalid_argument("LeafSet: too many successors");
    }
    cw_ = std::move(members);
}

void LeafSet::set_predecessors(std::vector<MemberIndex> members) {
    if (members.size() > static_cast<std::size_t>(half_)) {
        throw std::invalid_argument("LeafSet: too many predecessors");
    }
    ccw_ = std::move(members);
}

}  // namespace concilium::overlay
