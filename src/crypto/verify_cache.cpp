#include "crypto/verify_cache.h"

#include "util/metrics.h"

namespace concilium::crypto {

namespace {

util::metrics::Counter& cache_hit() {
    static auto& c =
        util::metrics::Registry::global().counter("crypto.verify.cache_hit");
    return c;
}

util::metrics::Counter& cache_miss() {
    static auto& c =
        util::metrics::Registry::global().counter("crypto.verify.cache_miss");
    return c;
}

}  // namespace

bool VerifyCache::verify(const PublicKey& key, const util::Digest& digest,
                         std::span<const std::uint8_t> message,
                         const Signature& sig) {
    const MemoKey memo_key{key, digest, sig};
    if (const auto it = memo_.find(memo_key); it != memo_.end()) {
        cache_hit().add(1);
        return it->second;
    }
    cache_miss().add(1);
    const bool ok = registry_->verify(key, message, sig);
    memo_.emplace(memo_key, ok);
    return ok;
}

}  // namespace concilium::crypto
