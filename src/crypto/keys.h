// Simulated public-key primitives.
//
// Concilium's protocol logic consumes exactly three cryptographic
// capabilities: (1) unforgeable signatures over byte strings, (2) a central
// certificate authority binding IP address <-> public key <-> random overlay
// identifier (Section 2), and (3) nonces for probe freshness (Section 3.3).
// None of the paper's evaluation exercises cryptographic hardness, so we
// substitute an *ideal* signature scheme: a signature is a keyed hash of the
// message, and verification consults a KeyRegistry that maps public keys to
// signing secrets.  Within the simulation the registry is only reachable
// through verify(), so no component -- including modelled adversaries -- can
// forge a tag it did not legitimately produce.  Wire-size accounting uses the
// paper's PSS-R/1024-bit figures (Section 4.4) so bandwidth numbers match a
// real deployment.

#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/ids.h"

namespace concilium::crypto {

/// Opaque 16-byte public-key token.
class PublicKey {
  public:
    static constexpr int kBytes = 16;
    /// Wire size of a 1024-bit public key, for bandwidth accounting.
    static constexpr int kWireBytes = 128;

    constexpr PublicKey() noexcept : bytes_{} {}
    explicit constexpr PublicKey(const std::array<std::uint8_t, kBytes>& b) noexcept
        : bytes_(b) {}

    [[nodiscard]] const std::array<std::uint8_t, kBytes>& bytes() const noexcept {
        return bytes_;
    }
    [[nodiscard]] std::string to_string() const;

    friend constexpr auto operator<=>(const PublicKey&, const PublicKey&) = default;

  private:
    std::array<std::uint8_t, kBytes> bytes_;
};

struct PublicKeyHash {
    std::size_t operator()(const PublicKey& k) const noexcept;
};

/// A signature tag.  The simulated tag is 16 bytes; the modelled wire size is
/// that of PSS-R with 1024-bit keys (Section 4.4).
class Signature {
  public:
    static constexpr int kBytes = 16;
    /// PSS-R signature wire size used by the paper's bandwidth model.
    static constexpr int kWireBytes = 128;

    constexpr Signature() noexcept : bytes_{} {}
    explicit constexpr Signature(const std::array<std::uint8_t, kBytes>& b) noexcept
        : bytes_(b) {}

    [[nodiscard]] const std::array<std::uint8_t, kBytes>& bytes() const noexcept {
        return bytes_;
    }

    friend constexpr auto operator<=>(const Signature&, const Signature&) = default;

  private:
    std::array<std::uint8_t, kBytes> bytes_;
};

/// A signing key.  Holders can produce signatures that verify against the
/// matching public key.
class KeyPair {
  public:
    /// Deterministically derives a key pair from a seed (the simulation gives
    /// each node a distinct seed).
    static KeyPair from_seed(std::uint64_t seed);

    [[nodiscard]] const PublicKey& public_key() const noexcept { return public_; }

    /// Signs a byte string.
    [[nodiscard]] Signature sign(std::span<const std::uint8_t> message) const;
    [[nodiscard]] Signature sign(std::string_view message) const;

  private:
    KeyPair(std::uint64_t secret, PublicKey pub) : secret_(secret), public_(pub) {}

    friend class KeyRegistry;

    std::uint64_t secret_;
    PublicKey public_;
};

/// The ideal-signature oracle.  register_key() is called once per key pair
/// (by the certificate authority at admission time); verify() recomputes the
/// keyed hash.  Simulated adversaries never call sign() with keys they do not
/// hold, which models existential unforgeability.
class KeyRegistry {
  public:
    void register_key(const KeyPair& pair);

    [[nodiscard]] bool knows(const PublicKey& key) const;

    [[nodiscard]] bool verify(const PublicKey& key,
                              std::span<const std::uint8_t> message,
                              const Signature& sig) const;
    [[nodiscard]] bool verify(const PublicKey& key, std::string_view message,
                              const Signature& sig) const;

  private:
    std::unordered_map<PublicKey, std::uint64_t, PublicKeyHash> secrets_;
};

}  // namespace concilium::crypto
