// Memoized signature verification.
//
// The archive/accusation path re-verifies the same snapshot signature many
// times per diagnosis: every routing peer receives every snapshot, stewards
// re-check bundled snapshots, and equivocation sweeps touch archived entries
// again.  With the ideal-signature scheme a verification costs a keyed hash
// over the full payload, so the repeated work is pure waste.  VerifyCache
// memoizes verdicts by (public key, payload digest, signature): the first
// verification pays the hash; repeats are a table lookup, counted by the
// crypto.verify.cache_hit / cache_miss metrics.
//
// Callers must pass the digest of exactly the bytes they would verify —
// producers compute it once per payload (snapshot publication interns it,
// see util::DigestInterner) and carry it alongside.  The cache holds a
// reference to the registry and is intended for single-threaded owners
// (one per simulated cluster); the shared certificate-authority registry
// should be consulted directly.

#pragma once

#include <cstring>
#include <span>
#include <unordered_map>

#include "crypto/keys.h"
#include "util/arena.h"

namespace concilium::crypto {

class VerifyCache {
  public:
    explicit VerifyCache(const KeyRegistry& registry) : registry_(&registry) {}

    /// Memoized KeyRegistry::verify.  `digest` must be the digest of
    /// `message` (the caller computed it once when the payload was built).
    bool verify(const PublicKey& key, const util::Digest& digest,
                std::span<const std::uint8_t> message, const Signature& sig);

    [[nodiscard]] std::size_t size() const noexcept { return memo_.size(); }

  private:
    struct MemoKey {
        PublicKey key;
        util::Digest digest;
        Signature sig;

        friend bool operator==(const MemoKey&, const MemoKey&) = default;
    };
    struct MemoKeyHash {
        std::size_t operator()(const MemoKey& k) const noexcept {
            // The digest is already uniformly mixed; fold in the key and
            // signature prefixes.
            std::uint64_t d, p, s;
            std::memcpy(&d, k.digest.data(), sizeof(d));
            std::memcpy(&p, k.key.bytes().data(), sizeof(p));
            std::memcpy(&s, k.sig.bytes().data(), sizeof(s));
            std::uint64_t h = d ^ (p * 0x9e3779b97f4a7c15ULL);
            h ^= s + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
            return static_cast<std::size_t>(h);
        }
    };

    const KeyRegistry* registry_;
    std::unordered_map<MemoKey, bool, MemoKeyHash> memo_;
};

}  // namespace concilium::crypto
