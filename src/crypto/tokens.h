// Signed timestamps and nonces.
//
// Signed freshness timestamps defeat jump-table *inflation* attacks: "a host
// can collect identifiers from peers that have gone offline and use these
// identifiers to inflate its advertised table density.  To protect against
// inflation attacks, Concilium requires a jump table entry referencing peer H
// to contain a signed timestamp from H." (Section 3.1)
//
// Nonces defeat spurious probe acknowledgments: "To detect spurious responses
// to non-received probes, the probing node includes nonces in its probes."
// (Section 3.3)

#pragma once

#include <cstdint>
#include <vector>

#include "crypto/keys.h"
#include "util/ids.h"
#include "util/serialize.h"
#include "util/time.h"

namespace concilium::crypto {

/// A statement "node `signer` was alive at time `at`", produced by the signer
/// when answering an availability probe and piggybacked on the response.
struct SignedTimestamp {
    util::NodeId signer;
    util::SimTime at = 0;
    Signature signature;

    [[nodiscard]] std::vector<std::uint8_t> signed_payload() const {
        util::ByteWriter w;
        w.node_id(signer);
        w.i64(at);
        return w.data();
    }

    /// Wire size: identifier + 4-byte timestamp, per Section 4.4's entry
    /// accounting ("a 16 byte node identifier and a 4 byte freshness
    /// timestamp"); the signature is amortised over the whole advertisement.
    static constexpr std::size_t kWireBytes = 16 + 4;
};

/// Creates a signed timestamp with `keys` (which must belong to `signer`).
SignedTimestamp make_signed_timestamp(const util::NodeId& signer,
                                      util::SimTime at, const KeyPair& keys);

/// Verifies the signature against the signer's public key.
bool verify_signed_timestamp(const SignedTimestamp& ts, const PublicKey& key,
                             const KeyRegistry& registry);

/// 64-bit probe nonce.
using Nonce = std::uint64_t;

}  // namespace concilium::crypto
