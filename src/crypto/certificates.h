// Certificate authority and node certificates.
//
// "Before a host can join a secure overlay, it must acquire a certificate
// from a central authority.  The certificate binds the host's IP address to a
// public key and an overlay identifier.  Since identifiers are static and
// randomly assigned, adversaries cannot deliberately move their hosts to
// advantageous regions of the identifier space." (Section 2)

#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "crypto/keys.h"
#include "util/ids.h"
#include "util/rng.h"
#include "util/serialize.h"

namespace concilium::crypto {

/// An IPv4-style end-host address; in the simulation this is the end-host's
/// router index in the IP topology.
using IpAddress = std::uint32_t;

struct NodeCertificate {
    IpAddress ip = 0;
    PublicKey public_key;
    util::NodeId node_id;
    Signature ca_signature;

    /// Canonical byte encoding (the signed payload excludes ca_signature).
    [[nodiscard]] std::vector<std::uint8_t> signed_payload() const;

    /// Wire size: payload + CA signature at modelled PSS-R width.
    [[nodiscard]] std::size_t wire_bytes() const;
};

/// The central authority of Section 2.  Issues certificates with *randomly
/// assigned* identifiers; nodes cannot choose their position in the ring.
class CertificateAuthority {
  public:
    explicit CertificateAuthority(std::uint64_t seed);

    /// Admits a host: generates its key pair, assigns a random identifier,
    /// registers the key for verification, and returns the certificate plus
    /// the key pair (which only the admitted host retains).
    struct Admission {
        NodeCertificate certificate;
        KeyPair keys;
    };
    Admission admit(IpAddress ip);

    /// Checks a certificate's CA signature and that the key is registered.
    [[nodiscard]] bool validate(const NodeCertificate& cert) const;

    [[nodiscard]] const KeyRegistry& registry() const noexcept {
        return registry_;
    }
    [[nodiscard]] const PublicKey& ca_public_key() const noexcept {
        return ca_keys_.public_key();
    }

  private:
    util::Rng rng_;
    KeyPair ca_keys_;
    KeyRegistry registry_;
    std::uint64_t admissions_ = 0;
};

}  // namespace concilium::crypto
