#include "crypto/tokens.h"

namespace concilium::crypto {

SignedTimestamp make_signed_timestamp(const util::NodeId& signer,
                                      util::SimTime at, const KeyPair& keys) {
    SignedTimestamp ts;
    ts.signer = signer;
    ts.at = at;
    ts.signature = keys.sign(ts.signed_payload());
    return ts;
}

bool verify_signed_timestamp(const SignedTimestamp& ts, const PublicKey& key,
                             const KeyRegistry& registry) {
    return registry.verify(key, ts.signed_payload(), ts.signature);
}

}  // namespace concilium::crypto
