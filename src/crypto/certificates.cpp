#include "crypto/certificates.h"

namespace concilium::crypto {

std::vector<std::uint8_t> NodeCertificate::signed_payload() const {
    util::ByteWriter w;
    w.u32(ip);
    w.bytes(public_key.bytes());
    w.node_id(node_id);
    return w.data();
}

std::size_t NodeCertificate::wire_bytes() const {
    // 4 (ip) + modelled public key + identifier + CA signature.
    return 4 + PublicKey::kWireBytes + util::NodeId::kBytes +
           Signature::kWireBytes;
}

CertificateAuthority::CertificateAuthority(std::uint64_t seed)
    : rng_(seed), ca_keys_(KeyPair::from_seed(seed ^ 0xCA15'CA15'CA15'CA15ULL)) {
    registry_.register_key(ca_keys_);
}

CertificateAuthority::Admission CertificateAuthority::admit(IpAddress ip) {
    KeyPair keys = KeyPair::from_seed(rng_.uniform_u64() ^ ++admissions_);
    registry_.register_key(keys);
    NodeCertificate cert;
    cert.ip = ip;
    cert.public_key = keys.public_key();
    cert.node_id = util::NodeId::random(rng_);
    cert.ca_signature = ca_keys_.sign(cert.signed_payload());
    return Admission{cert, keys};
}

bool CertificateAuthority::validate(const NodeCertificate& cert) const {
    if (!registry_.knows(cert.public_key)) return false;
    return registry_.verify(ca_keys_.public_key(), cert.signed_payload(),
                            cert.ca_signature);
}

}  // namespace concilium::crypto
