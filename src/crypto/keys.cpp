#include "crypto/keys.h"

#include <cstring>

namespace concilium::crypto {

namespace {

std::uint64_t splitmix(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ULL;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    return x ^ (x >> 31);
}

/// Keyed hash producing a 16-byte tag: two chained FNV-1a passes mixed with
/// the secret.  Collision-resistant enough for simulation purposes.
std::array<std::uint8_t, 16> keyed_tag(std::uint64_t secret,
                                       std::span<const std::uint8_t> message) {
    std::uint64_t h1 = splitmix(secret ^ 0xa076'1d64'78bd'642fULL);
    std::uint64_t h2 = splitmix(secret ^ 0xe703'7ed1'a0b4'28dbULL);
    for (const std::uint8_t c : message) {
        h1 = (h1 ^ c) * 0x100000001b3ULL;
        h2 = (h2 ^ (c + 0x51)) * 0x100000001b3ULL;
    }
    h1 = splitmix(h1 ^ (h2 >> 13));
    h2 = splitmix(h2 ^ (h1 << 7));
    std::array<std::uint8_t, 16> out{};
    for (int i = 0; i < 8; ++i) {
        out[i] = static_cast<std::uint8_t>(h1 >> (8 * i));
        out[8 + i] = static_cast<std::uint8_t>(h2 >> (8 * i));
    }
    return out;
}

std::span<const std::uint8_t> as_bytes(std::string_view s) {
    return {reinterpret_cast<const std::uint8_t*>(s.data()), s.size()};
}

}  // namespace

std::string PublicKey::to_string() const {
    static constexpr char kHex[] = "0123456789abcdef";
    std::string out;
    out.reserve(2 * kBytes);
    for (const std::uint8_t b : bytes_) {
        out.push_back(kHex[b >> 4]);
        out.push_back(kHex[b & 0x0f]);
    }
    return out;
}

std::size_t PublicKeyHash::operator()(const PublicKey& k) const noexcept {
    std::uint64_t h = 0xcbf29ce484222325ULL;
    for (const std::uint8_t b : k.bytes()) {
        h = (h ^ b) * 0x100000001b3ULL;
    }
    return static_cast<std::size_t>(h);
}

KeyPair KeyPair::from_seed(std::uint64_t seed) {
    const std::uint64_t secret = splitmix(seed ^ 0x243f'6a88'85a3'08d3ULL);
    const std::uint64_t p1 = splitmix(secret ^ 0x1357'9bdf'0246'8aceULL);
    const std::uint64_t p2 = splitmix(p1);
    std::array<std::uint8_t, PublicKey::kBytes> pub{};
    for (int i = 0; i < 8; ++i) {
        pub[i] = static_cast<std::uint8_t>(p1 >> (8 * i));
        pub[8 + i] = static_cast<std::uint8_t>(p2 >> (8 * i));
    }
    return KeyPair(secret, PublicKey(pub));
}

Signature KeyPair::sign(std::span<const std::uint8_t> message) const {
    return Signature(keyed_tag(secret_, message));
}

Signature KeyPair::sign(std::string_view message) const {
    return sign(as_bytes(message));
}

void KeyRegistry::register_key(const KeyPair& pair) {
    secrets_[pair.public_key()] = pair.secret_;
}

bool KeyRegistry::knows(const PublicKey& key) const {
    return secrets_.contains(key);
}

bool KeyRegistry::verify(const PublicKey& key,
                         std::span<const std::uint8_t> message,
                         const Signature& sig) const {
    const auto it = secrets_.find(key);
    if (it == secrets_.end()) return false;
    return Signature(keyed_tag(it->second, message)) == sig;
}

bool KeyRegistry::verify(const PublicKey& key, std::string_view message,
                         const Signature& sig) const {
    return verify(key, as_bytes(message), sig);
}

}  // namespace concilium::crypto
