// Quickstart: the Concilium pipeline end to end, in one small world.
//
//   1. Generate an IP topology and place a secure Pastry overlay on it.
//   2. Pick a sender A, a forwarder B, and B's next hop C.
//   3. Drop A's message and let A gather tomographic evidence.
//   4. Compute blame (Equations 2-3), threshold it into a verdict, and --
//      after enough guilty verdicts -- file a self-verifying accusation
//      into the DHT, where any third party can check it.
//
// Run: ./quickstart [seed]

#include <cstdio>
#include <cstdlib>

#include "core/accusation.h"
#include "core/verdicts.h"
#include "dht/dht.h"
#include "sim/scenario.h"

using namespace concilium;

int main(int argc, char** argv) {
    const std::uint64_t seed =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;

    // --- 1. The world -----------------------------------------------------
    sim::ScenarioParams params;
    params.topology = net::small_params();
    params.topology.end_hosts = 400;
    params.overlay_nodes_override = 60;
    params.duration = 60 * util::kMinute;
    params.seed = seed;
    const sim::Scenario world(params);
    const auto& overlay = world.overlay_net();
    std::printf("world: %zu routers, %zu links, %zu overlay nodes\n",
                world.topology().router_count(),
                world.topology().link_count(), overlay.size());

    // --- 2. A routing triple ----------------------------------------------
    // Resample until the B -> C path is clean at judgment time, so the
    // dropped message can only be B's fault and the accusation flow runs.
    util::Rng rng(seed + 1);
    std::optional<sim::Scenario::Triple> triple;
    for (int attempt = 0; attempt < 200; ++attempt) {
        const auto candidate = world.sample_triple(rng);
        if (!candidate) continue;
        if (!world.path_bad(
                world.path_links(candidate->b, candidate->c),
                30 * util::kMinute)) {
            triple = candidate;
            break;
        }
    }
    if (!triple) {
        std::fprintf(stderr, "no routable triple found\n");
        return 1;
    }
    const auto [a, b, c] = *triple;
    std::printf("A = %s  routes through  B = %s  (next hop C = %s)\n",
                overlay.member(a).id().short_hex().c_str(),
                overlay.member(b).id().short_hex().c_str(),
                overlay.member(c).id().short_hex().c_str());

    // --- 3. The drop and the evidence --------------------------------------
    const util::SimTime t = 30 * util::kMinute;
    const auto path = world.path_links(b, c);
    std::printf("IP path B->C has %zu links; ground truth at t: %s\n",
                path.size(),
                world.path_bad(path, t) ? "at least one link DOWN"
                                        : "all links up");
    const auto probes = world.gather_probes(
        a, path, t, sim::Scenario::CollusionStance::kNone, /*query_id=*/1);
    std::printf("A holds %zu probe results covering that path "
                "(its own + snapshots from its routing peers)\n",
                probes.size());

    // --- 4. Blame, verdict, accusation --------------------------------------
    const auto breakdown = core::compute_blame(
        path, probes, t, overlay.member(b).id(), world.params().blame);
    std::printf("Equation 2: Pr(B -> C bad) = %.3f  =>  blame on B = %.3f\n",
                breakdown.path_bad_confidence, breakdown.blame);

    core::VerdictParams verdict_params;
    core::VerdictLedger ledger(verdict_params);
    core::VerdictLedger::RecordOutcome outcome{};
    // Replay the same judgment as if m drops had accumulated.
    for (int i = 0; i < verdict_params.accusation_threshold; ++i) {
        outcome = ledger.record(overlay.member(b).id(), breakdown.blame, t);
    }
    if (!outcome.guilty) {
        std::printf("verdict: NOT GUILTY -- the network is blamed; "
                    "no accusation is filed\n");
        return 0;
    }
    std::printf("verdict: GUILTY (%d guilty verdicts in window; "
                "accusation %striggered)\n",
                outcome.guilty_in_window,
                outcome.accusation_triggered ? "" : "not ");

    // Bundle the signed evidence into a self-verifying accusation.
    core::BlameEvidence ev;
    ev.judge = overlay.member(a).id();
    ev.suspect = overlay.member(b).id();
    ev.message_id = 1;
    ev.message_time = t;
    ev.path_links.assign(path.begin(), path.end());
    {
        // One snapshot per reporter.
        std::unordered_map<util::NodeId,
                           std::vector<tomography::LinkObservation>,
                           util::NodeIdHash>
            by_reporter;
        std::unordered_map<util::NodeId, util::SimTime, util::NodeIdHash>
            at;
        for (const auto& p : probes) {
            by_reporter[p.reporter].push_back({p.link, p.link_up});
            at[p.reporter] = p.at;
        }
        for (auto& [reporter, links] : by_reporter) {
            tomography::TomographicSnapshot snap;
            snap.origin = reporter;
            snap.probed_at = at[reporter];
            snap.links = std::move(links);
            const auto idx = overlay.index_of(reporter);
            snap.signature =
                overlay.member(*idx).keys.sign(snap.signed_payload());
            ev.snapshots.push_back(std::move(snap));
        }
    }
    ev.commitment = core::make_forwarding_commitment(
        ev.judge, ev.suspect, overlay.member(c).id(), ev.message_id, t,
        overlay.member(b).keys);
    ev.claimed_blame = breakdown.blame;
    ev.judge_signature = overlay.member(a).keys.sign(ev.signed_payload());

    core::FaultAccusation accusation;
    accusation.accuser = overlay.member(a).id();
    accusation.evidence.push_back(std::move(ev));
    accusation.signature =
        overlay.member(a).keys.sign(accusation.signed_payload());

    // --- 5. DHT storage + third-party verification --------------------------
    dht::Dht repository(overlay, 4);
    const auto key =
        core::FaultAccusation::dht_key(overlay.member(b).keys.public_key());
    repository.put(a, key, accusation.serialize());
    std::printf("accusation stored in the DHT under B's public key "
                "(replicas: %zu)\n",
                repository.replica_set(key).size());

    crypto::KeyRegistry registry;
    for (overlay::MemberIndex i = 0; i < overlay.size(); ++i) {
        registry.register_key(overlay.member(i).keys);
    }
    const core::AccusationVerifier verifier(
        registry,
        [&](const util::NodeId& id) -> std::optional<crypto::PublicKey> {
            const auto idx = overlay.index_of(id);
            if (!idx) return std::nullopt;
            return overlay.member(*idx).keys.public_key();
        },
        world.params().blame, verdict_params);

    const auto fetched = repository.get((a + 11) % overlay.size(), key);
    const auto parsed = core::FaultAccusation::deserialize(fetched.values.at(0));
    std::printf("third party fetched + verified the accusation: %s\n",
                core::to_string(verifier.verify(parsed)));
    return 0;
}
