// Routing-state auditing (Section 3.1): validating a peer's advertised jump
// table before trusting it.  Shows the full pipeline catching each attack:
//
//   * an honest advertisement passes,
//   * a *suppressed* table (hiding honest entries) fails the density test,
//   * an *inflation* attack (re-advertising departed peers) fails the
//     signed-freshness check,
//   * a misplaced entry fails the structural constraint.
//
// Run: ./routing_audit [seed]

#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "core/validation.h"
#include "crypto/certificates.h"
#include "overlay/advertisement.h"
#include "overlay/density.h"
#include "util/rng.h"

using namespace concilium;

int main(int argc, char** argv) {
    const std::uint64_t seed =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;

    // A 300-node overlay admitted through one CA.
    crypto::CertificateAuthority ca(seed);
    util::Rng rng(seed + 1);
    std::vector<overlay::Member> members;
    for (int i = 0; i < 300; ++i) {
        auto adm = ca.admit(static_cast<crypto::IpAddress>(i));
        members.push_back(
            overlay::Member{std::move(adm.certificate), std::move(adm.keys)});
    }
    const overlay::OverlayNetwork net(std::move(members),
                                      overlay::OverlayParams{}, rng);

    std::unordered_map<util::NodeId, crypto::PublicKey, util::NodeIdHash> keys;
    crypto::KeyRegistry registry;
    for (overlay::MemberIndex i = 0; i < net.size(); ++i) {
        keys.emplace(net.member(i).id(), net.member(i).keys.public_key());
        registry.register_key(net.member(i).keys);
    }
    const auto key_of = [&](const util::NodeId& id)
        -> std::optional<crypto::PublicKey> {
        const auto it = keys.find(id);
        if (it == keys.end()) return std::nullopt;
        return it->second;
    };

    // The analytic occupancy model guides the gamma choice (Section 4.1).
    const double n_est = net.estimate_population(0);
    const auto model =
        overlay::occupancy_model(n_est, net.params().geometry);
    std::printf("population estimate from leaf spacing: %.0f (truth: %zu)\n",
                n_est, net.size());
    std::printf("expected occupied jump slots mu_phi = %.1f (sd %.1f)\n",
                model.mean_count(), model.stddev_count());
    const auto gamma_choice = overlay::optimal_gamma(
        n_est, n_est, 0.2 * n_est, net.params().geometry, 1.0, 4.0, 151);
    std::printf("gamma* for c = 20%%: %.2f (analytic FP %.4f, FN %.4f)\n\n",
                gamma_choice.gamma, gamma_choice.false_positive,
                gamma_choice.false_negative);

    core::ValidationParams params;
    params.geometry = net.params().geometry;
    params.gamma = std::max(1.8, gamma_choice.gamma);  // headroom at small N
    const util::SimTime now = 30 * util::kMinute;
    const double local_density = net.secure_table(0).density();

    const auto check = [&](const char* label,
                           const overlay::JumpTableAdvertisement& ad) {
        std::printf("%-38s -> %s\n", label,
                    core::to_string(core::validate_advertisement(
                        ad, local_density, now, params, key_of, registry)));
    };

    // 1. Honest advertisement.
    const auto honest = overlay::make_advertisement(
        net, 7, now, [&](overlay::MemberIndex) {
            return now - 30 * util::kSecond;
        });
    check("honest advertisement", honest);

    // 2. Suppression: hide two thirds of the table.
    auto suppressed = honest;
    suppressed.entries.resize(suppressed.entries.size() / 3);
    suppressed.signature =
        net.member(7).keys.sign(suppressed.signed_payload());
    check("suppressed table (2/3 hidden)", suppressed);

    // 3. Inflation: re-advertise entries whose owners stopped answering
    // probes ten minutes ago.
    const auto stale = overlay::make_advertisement(
        net, 7, now,
        [&](overlay::MemberIndex) { return now - 10 * util::kMinute; });
    check("inflated table (stale timestamps)", stale);

    // 4. Forged freshness: the advertiser rewrites the timestamps itself.
    auto forged = stale;
    for (auto& e : forged.entries) e.freshness.at = now;
    forged.signature = net.member(7).keys.sign(forged.signed_payload());
    check("inflated table (forged timestamps)", forged);

    // 5. Structural violation: an entry moved to the wrong slot.
    auto misplaced = honest;
    if (!misplaced.entries.empty()) {
        misplaced.entries[0].row = (misplaced.entries[0].row + 7) % 32;
        misplaced.signature =
            net.member(7).keys.sign(misplaced.signed_payload());
        check("entry in the wrong slot", misplaced);
    }
    return 0;
}
