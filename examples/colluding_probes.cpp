// Colluding probe-flippers (Section 4.3): 20% of peers strategically invert
// the probe results they publish -- claiming links up to frame innocent
// forwarders and links down to shield guilty confederates.  This example
// measures how much the blame distributions blur, then uses the binomial
// accusation model to pick the sliding-window threshold m that restores
// sub-1% formal-accusation error rates.
//
// Run: ./colluding_probes [seed]

#include <cstdio>
#include <cstdlib>

#include "core/verdicts.h"
#include "sim/experiments.h"

using namespace concilium;

namespace {

sim::BlameExperimentResult measure(double malicious, std::uint64_t seed) {
    sim::ScenarioParams params;
    params.topology = net::small_params();
    params.topology.end_hosts = 500;
    params.overlay_nodes_override = 80;
    params.duration = 90 * util::kMinute;
    params.malicious_fraction = malicious;
    params.seed = seed;
    const sim::Scenario world(params);
    sim::BlameExperimentParams exp;
    exp.samples = 8000;
    const sim::ExperimentDriver driver({.seed = seed + 5});
    return sim::run_blame_experiment(world, exp, driver);
}

}  // namespace

int main(int argc, char** argv) {
    const std::uint64_t seed =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 11;

    std::printf("measuring per-drop conviction rates (threshold 40%%)...\n\n");
    const auto honest = measure(0.0, seed);
    const auto colluding = measure(0.20, seed);

    std::printf("%-28s %-22s %-22s\n", "", "honest reporters",
                "20% colluders");
    std::printf("%-28s %-22.4f %-22.4f\n",
                "innocent convicted (p_good)", honest.p_good,
                colluding.p_good);
    std::printf("%-28s %-22.4f %-22.4f\n", "faulty convicted (p_faulty)",
                honest.p_faulty, colluding.p_faulty);

    std::printf("\ncollusion blurs the evidence, but the sliding window "
                "(w = 100) absorbs it:\n");
    const int w = 100;
    for (const auto* label : {"honest", "colluding"}) {
        const auto& r = label[0] == 'h' ? honest : colluding;
        const auto m =
            core::minimal_accusation_threshold(w, r.p_good, r.p_faulty, 0.01);
        if (m.has_value()) {
            std::printf(
                "  %-10s minimal m with both error rates < 1%%: m = %d "
                "(FP %.5f, FN %.5f)\n",
                label, *m, core::accusation_false_positive(w, *m, r.p_good),
                core::accusation_false_negative(w, *m, r.p_faulty));
        } else {
            std::printf("  %-10s no m achieves sub-1%% error rates\n", label);
        }
    }
    std::printf("\npaper reference: m = 6 honest, m = 16 with 20%% "
                "colluders (Figure 6)\n");
    return 0;
}
