// The paper's running example (Section 3.5): a message from A toward Z is
// dropped by a forwarder several hops downstream.  Naive per-hop judgment
// would leave A blaming its innocent first hop; recursive stewardship and
// accusation revision push the blame chain downstream until it sticks at
// the true dropper, exonerating everyone in between.
//
// Run: ./diagnose_downstream [seed]

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "core/steward.h"
#include "sim/scenario.h"

using namespace concilium;

int main(int argc, char** argv) {
    const std::uint64_t seed =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;

    sim::ScenarioParams params;
    params.topology = net::small_params();
    params.topology.end_hosts = 500;
    params.overlay_nodes_override = 80;
    params.duration = 60 * util::kMinute;
    params.seed = seed;
    const sim::Scenario world(params);
    const auto& overlay = world.overlay_net();

    // Find a reasonably long route whose hop-to-hop IP paths are all clean
    // at judgment time, so the only possible culprit is a forwarder.
    util::Rng rng(seed + 1);
    const util::SimTime t = 20 * util::kMinute;
    std::vector<overlay::MemberIndex> route;
    for (int attempt = 0; attempt < 2000 && route.empty(); ++attempt) {
        const auto start = static_cast<overlay::MemberIndex>(
            rng.uniform_index(overlay.size()));
        std::vector<overlay::MemberIndex> hops;
        try {
            hops = overlay.route(start, util::NodeId::random(rng));
        } catch (const std::runtime_error&) {
            continue;
        }
        if (hops.size() < 4) continue;
        bool clean = true;
        for (std::size_t i = 0; clean && i + 1 < hops.size(); ++i) {
            if (!world.leaf_slot(hops[i], hops[i + 1]).has_value() ||
                world.path_bad(world.path_links(hops[i], hops[i + 1]), t)) {
                clean = false;
            }
        }
        if (clean) route = std::move(hops);
    }
    if (route.empty()) {
        std::fprintf(stderr, "no clean multi-hop route found\n");
        return 1;
    }

    std::printf("route (%zu hops):", route.size());
    for (const auto h : route) {
        std::printf(" %s", overlay.member(h).id().short_hex().c_str());
    }
    std::printf("\n");

    // The penultimate forwarder drops the message.
    const std::size_t dropper = route.size() - 2;
    std::printf("injected fault: hop %zu (%s) silently drops the message\n",
                dropper, overlay.member(route[dropper]).id().short_hex().c_str());

    // Every steward that forwarded judges its next hop from its own
    // tomographic vantage point.
    std::uint64_t query = 100;
    const auto blame_fn = [&](std::size_t judge, std::size_t suspect) {
        const auto path = world.path_links(route[judge], route[suspect]);
        const auto probes = world.gather_probes(
            route[judge], path, t, sim::Scenario::CollusionStance::kNone,
            query++);
        const auto b = core::compute_blame(
            path, probes, t, overlay.member(route[suspect]).id(),
            world.params().blame);
        std::printf("  hop %zu judges hop %zu: blame %.3f (%s)\n", judge,
                    suspect, b.blame,
                    core::is_guilty_verdict(b.blame, core::VerdictParams{})
                        ? "guilty"
                        : "not guilty -> network");
        return b.blame;
    };

    std::printf("\nwithout revision, A simply convicts its first hop:\n");
    const double first = blame_fn(0, 1);
    std::printf("  => naive outcome: hop 1 blamed (blame %.3f), "
                "which is WRONG\n\n",
                first);

    std::printf("with recursive stewardship (Section 3.5):\n");
    const auto outcome = core::attribute_fault(
        route.size(), /*forwarder_count=*/dropper, blame_fn,
        core::VerdictParams{});
    if (outcome.network_blamed) {
        std::printf("  => network blamed at segment %zu "
                    "(probe noise produced an acquittal upstream)\n",
                    *outcome.faulted_segment);
    } else {
        std::printf("  => blame sticks at hop %zu -- %s\n",
                    *outcome.blamed_hop,
                    *outcome.blamed_hop == dropper
                        ? "the true dropper; everyone upstream exonerated"
                        : "not the injected dropper (evidence noise)");
    }
    return 0;
}
