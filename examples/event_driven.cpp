// The full protocol, live: an event-driven Concilium deployment.
//
// Builds a small world, starts every node's probing loops, sends traffic,
// then follows one misbehaving forwarder from its first dropped message to
// a verified accusation in the DHT and the sanction a prospective peer
// would apply (Section 3.7).
//
// Run: ./event_driven [seed]

#include <cstdio>
#include <cstdlib>
#include <stdexcept>

#include "core/reputation.h"
#include "runtime/cluster.h"
#include "sim/scenario.h"

using namespace concilium;

int main(int argc, char** argv) {
    const std::uint64_t seed =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 9;

    // --- the world -----------------------------------------------------
    sim::ScenarioParams wp;
    wp.topology = net::small_params();
    wp.topology.end_hosts = 500;
    wp.overlay_nodes_override = 70;
    wp.duration = 2 * util::kHour;
    wp.seed = seed;
    sim::Scenario world(wp);
    const auto& overlay = world.overlay_net();
    std::printf("world: %zu routers, %zu overlay nodes, 5%% of links "
                "failing at any moment\n",
                world.topology().router_count(), overlay.size());

    // Find a route with an interior hop to corrupt.
    util::Rng rng(seed + 1);
    std::vector<overlay::MemberIndex> hops;
    overlay::MemberIndex sender = 0;
    util::NodeId key;
    for (int attempt = 0; attempt < 20000 && hops.size() < 4; ++attempt) {
        sender = static_cast<overlay::MemberIndex>(
            rng.uniform_index(overlay.size()));
        key = util::NodeId::random(rng);
        try {
            hops = overlay.route(sender, key);
        } catch (const std::runtime_error&) {
            hops.clear();
        }
    }
    if (hops.size() < 4) {
        std::fprintf(stderr, "no suitable route found\n");
        return 1;
    }
    const overlay::MemberIndex villain = hops[2];
    std::vector<runtime::NodeBehavior> behaviors(overlay.size());
    behaviors[villain].drop_forward_probability = 1.0;

    net::EventSim sim;
    runtime::Cluster cluster(sim, world.timeline(), overlay, world.trees(),
                             runtime::RuntimeParams{}, behaviors,
                             world.fork_rng());
    cluster.start();
    std::printf("node %s will silently drop everything it should forward\n\n",
                overlay.member(villain).id().short_hex().c_str());

    // Warm up the probing fabric.
    sim.run_until(3 * util::kMinute);
    std::printf("after 3 virtual minutes of probing: %zu snapshots "
                "published, %zu archived at the sender\n",
                cluster.stats().snapshots_published,
                cluster.archive(sender).size());

    // --- traffic + diagnosis --------------------------------------------
    int sent = 0;
    int reached_villain = 0;
    int blamed_villain = 0;
    for (int i = 0; i < 20; ++i) {
        ++sent;
        cluster.send(sender, key,
                     [&](const runtime::Cluster::MessageOutcome& out) {
                         if (out.true_drop_hop.has_value()) {
                             ++reached_villain;
                             if (out.blamed ==
                                 overlay.member(villain).id()) {
                                 ++blamed_villain;
                             }
                         }
                     });
        sim.run_until(sim.now() + 60 * util::kSecond);
    }
    sim.run_until(sim.now() + 3 * util::kMinute);
    std::printf("sent %d messages along the corrupted route; %d reached the "
                "dropper, %d diagnoses pinned it\n",
                sent, reached_villain, blamed_villain);
    std::printf("stats: %zu guilty verdicts, %zu revisions pushed, %zu "
                "heavyweight sessions, %zu accusations filed\n\n",
                cluster.stats().guilty_verdicts,
                cluster.stats().revisions_pushed,
                cluster.stats().heavyweight_sessions,
                cluster.stats().accusations_filed);

    // --- the paper's endgame: third-party verification + sanction --------
    const auto accusations = cluster.accusations_against(villain);
    std::printf("accusations stored in the DHT against the dropper: %zu\n",
                accusations.size());
    int verified = 0;
    for (const auto& acc : accusations) {
        if (cluster.verify(acc) == core::AccusationCheck::kOk) ++verified;
    }
    std::printf("independently verified by a prospective peer: %d\n",
                verified);
    const auto decision = core::evaluate_sanction(
        core::SanctionPolicy::kUniversalBlacklist, verified,
        /*blacklist_threshold=*/1);
    std::printf("sanction under kUniversalBlacklist: peering %s, sensitive "
                "messages %s, leaf-set membership %s\n",
                decision.allow_peering ? "allowed" : "REFUSED",
                decision.allow_sensitive_messages ? "allowed" : "withheld",
                decision.keep_in_leaf_set ? "kept (required for consistent "
                                            "routing)"
                                          : "revoked");
    return 0;
}
