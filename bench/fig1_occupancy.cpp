// Figure 1: "Modeling jump table occupancy".
//
// Compares the analytic occupancy distribution phi(mu_phi, sigma_phi)
// (Equation 1 + Poisson-binomial normal approximation, Section 3.1) against
// Monte Carlo simulations of jump-table occupancy, across overlay sizes.
// The paper shows the model tracking the simulated mean with y-bars for the
// standard deviation.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "overlay/density.h"
#include "util/rng.h"

int main(int argc, char** argv) {
    using namespace concilium;
    const auto args = bench::parse_args(argc, argv);
    bench::BenchReport report("fig1_occupancy", args);
    const util::OverlayGeometry geometry{.digits = 32};
    const int samples =
        args.samples != 0 ? static_cast<int>(args.samples)
                          : (args.full ? 400 : 150);

    bench::print_header(
        "1", "jump-table occupancy: analytic model vs Monte Carlo");
    bench::print_param("digits", geometry.digits);
    bench::print_param("samples_per_N", samples);
    bench::print_param("seed", static_cast<double>(args.seed));

    std::vector<int> populations{250, 500, 1131, 2500, 5000, 10000, 20000};
    if (args.full) populations.push_back(100000);

    std::printf("%-8s %-12s %-12s %-12s %-12s %-10s\n", "N", "model_mean",
                "model_sd", "mc_mean", "mc_sd", "rel_err");
    for (const int n : populations) {
        const auto model = overlay::occupancy_model(n, geometry);
        // One trial = one simulated table; per-population driver seeds keep
        // the populations' substreams disjoint.
        const auto driver =
            bench::make_driver(args, static_cast<std::uint64_t>(n));
        util::OnlineMoments mc;
        driver.run(
            static_cast<std::size_t>(samples),
            [&](std::uint64_t, util::Rng& rng) {
                return overlay::simulate_table_occupancy(n, geometry, 1, rng);
            },
            [&](std::uint64_t, util::OnlineMoments&& one) { mc.merge(one); });
        const double rel_err =
            std::abs(mc.mean() - model.mean_count()) /
            std::max(1.0, model.mean_count());
        std::printf("%-8d %-12.3f %-12.3f %-12.3f %-12.3f %-10.4f\n", n,
                    model.mean_count(), model.stddev_count(), mc.mean(),
                    mc.stddev(), rel_err);
    }
    return 0;
}
