// Shared bench helper: admit `count` members through a CA.

#pragma once

#include <vector>

#include "crypto/certificates.h"
#include "overlay/network.h"

namespace concilium::bench {

inline std::vector<overlay::Member> make_members(
    crypto::CertificateAuthority& ca, std::size_t count) {
    std::vector<overlay::Member> members;
    members.reserve(count);
    for (std::size_t i = 0; i < count; ++i) {
        auto admission = ca.admit(static_cast<crypto::IpAddress>(i));
        members.push_back(overlay::Member{std::move(admission.certificate),
                                          std::move(admission.keys)});
    }
    return members;
}

}  // namespace concilium::bench
