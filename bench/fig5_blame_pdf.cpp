// Figure 5: pdfs of the blame Equation 2 assigns to faulty and non-faulty
// forwarders (max_probe_time = 120 s, Delta = 60 s, probe accuracy 0.9).
//
//  (a) all peers report probe results faithfully;
//  (b) 20% of peers collude and strategically invert their reports.
//
// Also prints the 40%-threshold conviction rates the paper quotes:
// honest -> innocent guilty 1.8%, faulty guilty 93.8%;
// colluding -> innocent guilty 8.4%, faulty guilty 71.3%.

#include <cstdio>

#include "bench_common.h"
#include "sim/experiments.h"

namespace {

void run_case(const char* label, double malicious,
              const concilium::bench::BenchArgs& args) {
    using namespace concilium;
    sim::ScenarioParams params = bench::paper_scenario(args, malicious);
    const sim::Scenario scenario(params);
    sim::BlameExperimentParams exp;
    exp.samples = args.samples != 0 ? args.samples
                                    : (args.full ? 200000 : 40000);
    exp.histogram_bins = 20;
    const auto driver = bench::make_driver(args, 29);
    const auto result = sim::run_blame_experiment(scenario, exp, driver);

    std::printf("\n# section: %s (overlay=%zu, samples=%zu)\n", label,
                scenario.overlay_net().size(), exp.samples);
    std::printf("%-10s %-16s %-16s\n", "blame", "pdf_faulty",
                "pdf_nonfaulty");
    for (std::size_t bin = 0; bin < result.faulty_pdf.bins(); ++bin) {
        std::printf("%-10.3f %-16.4f %-16.4f\n",
                    result.faulty_pdf.bin_center(bin),
                    result.faulty_pdf.density(bin),
                    result.nonfaulty_pdf.density(bin));
    }
    std::printf("# threshold=0.4: p_good (innocent convicted) = %.4f, "
                "p_faulty (faulty convicted) = %.4f\n",
                result.p_good, result.p_faulty);
    std::printf("# sample split: faulty=%zu nonfaulty=%zu\n",
                result.faulty_samples, result.nonfaulty_samples);
}

}  // namespace

int main(int argc, char** argv) {
    using namespace concilium;
    const auto args = bench::parse_args(argc, argv);
    bench::BenchReport report("fig5_blame_pdf", args);
    bench::print_header("5", "blame pdfs for faulty vs non-faulty nodes");
    bench::print_param("max_probe_time_s", 120);
    bench::print_param("delta_s", 60);
    bench::print_param("probe_accuracy", 0.9);
    bench::print_param("seed", static_cast<double>(args.seed));

    run_case("(a) faithful probe reports", 0.0, args);
    std::printf("# paper (a): p_good 0.018, p_faulty 0.938\n");
    run_case("(b) 20% colluding probe-flippers", 0.20, args);
    std::printf("# paper (b): p_good 0.084, p_faulty 0.713\n");
    return 0;
}
