// Simulated-weeks soak of the conciliumd engine (DAEMON.md).
//
// Drives daemon::Daemon in-process over a generated workload trace --
// diurnal load, flash crowds, correlated regional churn, crashes, link
// faults (tools/gen_workload.py) -- and scores every diagnosis against
// ground truth, exactly as the service binary does.  Where the other soaks
// sweep an intensity axis over minutes of sim time, this one holds the
// trace's intensity and runs for *weeks* of it: the question is whether
// false accusations and orphaned messages stay flat as churn cycles,
// crash-replays, and checkpoint cadences accumulate.
//
//   soak_daemon --trace weeks.trace [--checkpoint-dir DIR] [--metrics-out F]
//
// The per-day table decomposes the run through the daemon.*.by_hour series;
// tools/check_daemon.py gates the end-of-run metrics in the nightly lane.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "bench_common.h"
#include "daemon/daemon.h"

int main(int argc, char** argv) {
    using namespace concilium;

    std::string trace_path;
    std::string checkpoint_dir;
    std::string io_faults_text;
    std::uint64_t io_faults_seed = 0;
    const auto args = bench::parse_args(
        argc, argv, [&](int& i, int arg_count, char** arg_values) {
            if (std::strcmp(arg_values[i], "--trace") == 0 &&
                i + 1 < arg_count) {
                trace_path = arg_values[++i];
                return true;
            }
            if (std::strcmp(arg_values[i], "--checkpoint-dir") == 0 &&
                i + 1 < arg_count) {
                checkpoint_dir = arg_values[++i];
                return true;
            }
            if (std::strcmp(arg_values[i], "--io-faults") == 0 &&
                i + 1 < arg_count) {
                io_faults_text = arg_values[++i];
                return true;
            }
            if (std::strcmp(arg_values[i], "--io-faults-seed") == 0 &&
                i + 1 < arg_count) {
                io_faults_seed = std::strtoull(arg_values[++i], nullptr, 10);
                return true;
            }
            return false;
        });
    if (trace_path.empty()) {
        std::fprintf(stderr,
                     "soak_daemon: --trace FILE is required "
                     "(generate one with tools/gen_workload.py)\n");
        return 2;
    }
    bench::BenchReport report("soak_daemon", args);

    daemon::Workload workload;
    try {
        workload = daemon::Workload::parse_file(trace_path);
    } catch (const std::exception& e) {
        std::fprintf(stderr, "soak_daemon: bad trace: %s\n", e.what());
        return 1;
    }

    daemon::DaemonOptions opts;
    opts.checkpoint_dir = checkpoint_dir;
    try {
        opts.io = std::make_shared<util::FaultFs>(
            util::IoFaultSpec::parse(io_faults_text, io_faults_seed));
    } catch (const std::exception& e) {
        std::fprintf(stderr, "soak_daemon: %s\n", e.what());
        return 2;
    }
    opts.checkpoint_every = 6 * util::kHour;
    opts.tick = 5 * util::kMinute;
    opts.settle = 10 * util::kMinute;
    // Soak tuning: weeks of sim time make per-probe cost the budget, so
    // probe less often than the interactive default; retry before judging
    // so transient IP loss does not masquerade as a malicious drop.
    opts.params.probe_interval_max = 5 * util::kMinute;
    opts.params.heavyweight_min_gap = 10 * util::kMinute;
    opts.params.forward_retry.max_attempts = 3;

    bench::print_header(
        "soak-daemon",
        "trace-driven daemon over simulated weeks: false-accusation and "
        "orphan rates vs ground truth");
    bench::print_param("trace_records",
                       static_cast<double>(workload.records.size()));
    bench::print_param("trace_messages",
                       static_cast<double>(workload.messages));
    bench::print_param("overlay_nodes",
                       static_cast<double>(workload.overlay_nodes));
    bench::print_param("sim_days",
                       static_cast<double>(workload.duration) /
                           (24.0 * util::kHour));
    bench::print_param("seed", static_cast<double>(workload.seed));

    daemon::Daemon d(std::move(workload), opts);
    if (!d.run()) return 1;  // no stop flag: false is unreachable
    for (const std::string& note : d.io_notes()) {
        std::fprintf(stderr, "soak_daemon: %s\n", note.c_str());
    }

    // Per-day decomposition through the windowed series the daemon fills.
    auto& reg = util::metrics::Registry::global();
    auto& fed_by_hour =
        reg.series("daemon.messages_fed.by_hour", util::kHour, 400,
                   util::metrics::SeriesMetric::Mode::kSum);
    auto& false_by_hour =
        reg.series("daemon.false_accusations.by_hour", util::kHour, 400,
                   util::metrics::SeriesMetric::Mode::kSum);
    const auto days = static_cast<std::size_t>(
        (d.end() + 24 * util::kHour - 1) / (24 * util::kHour));
    std::printf("%-6s %-10s %-10s\n", "day", "fed", "false_acc");
    for (std::size_t day = 0; day < days; ++day) {
        std::int64_t fed = 0;
        std::int64_t false_acc = 0;
        for (std::size_t h = day * 24;
             h < (day + 1) * 24 && h < fed_by_hour.windows(); ++h) {
            fed += fed_by_hour.value(h);
            false_acc += false_by_hour.value(h);
        }
        std::printf("%-6zu %-10lld %-10lld\n", day,
                    static_cast<long long>(fed),
                    static_cast<long long>(false_acc));
    }

    const auto& score = d.score();
    const auto& stats = d.cluster().stats();
    const double false_rate =
        score.diagnosed == 0
            ? 0.0
            : static_cast<double>(score.false_accusations) /
                  static_cast<double>(score.diagnosed);
    const double orphan_rate =
        score.fed == 0 ? 0.0
                       : static_cast<double>(score.orphans()) /
                             static_cast<double>(score.fed);
    std::printf("%-10s %-10s %-10s %-10s %-10s %-8s %-8s %-8s %-8s\n",
                "fed", "delivered", "diagnosed", "false_acc", "false_rate",
                "insuff", "orphans", "crashes", "replays");
    std::printf("%-10llu %-10llu %-10llu %-10llu %-10.4f %-8llu %-8llu "
                "%-8zu %-8zu\n",
                static_cast<unsigned long long>(score.fed),
                static_cast<unsigned long long>(score.delivered),
                static_cast<unsigned long long>(score.diagnosed),
                static_cast<unsigned long long>(score.false_accusations),
                false_rate,
                static_cast<unsigned long long>(score.insufficient),
                static_cast<unsigned long long>(score.orphans()),
                stats.crashes, stats.journal_replays);

    report.set("sim_seconds", static_cast<double>(d.end() / util::kSecond));
    report.set("messages_fed", static_cast<double>(score.fed));
    report.set("false_rate", false_rate);
    report.set("orphan_rate", orphan_rate);
    report.set("io_faults_injected", static_cast<double>(d.io().injected()));
    report.set("io_degraded", d.io_degraded() ? 1.0 : 0.0);
    return 0;
}
