// Attack soak: the full protocol runtime under a Byzantine campaign.
//
// Sweeps a base `--attack` spec (default recruits equivocators, replayers,
// slanderers, spammers, and colluders) through intensity multipliers and, at
// each level, runs the event-driven cluster and scores the evidence-
// integrity defenses against ground truth:
//
//   evasion   - an attacker that actually dropped a message but was never
//               blamed, never received a verified accusation, and has no
//               equivocation proof on file.  Should stay near zero.
//   slander   - an accusation filed by a slanderer that a third party
//               verifies as kOk.  Must be exactly zero: cherry-picked
//               bundles fail the freshness/sufficiency checks.
//   false_acc - a diagnosed message whose final blame landed on an honest
//               node.  Should stay near zero.
//
// tools/check_attacks.py gates the nightly build on these columns.  One
// driver trial per intensity level; recruitment and the workload are pure
// functions of the trial substream, so the table and the deterministic
// metrics section are byte-identical at any --jobs count.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/trace.h"
#include "runtime/cluster.h"
#include "util/metrics.h"

namespace {

using namespace concilium;

void append(std::string& out, const char* fmt, auto... args) {
    char buf[256];
    std::snprintf(buf, sizeof buf, fmt, args...);
    out += buf;
}

constexpr double kIntensities[] = {0.0, 0.5, 1.0, 2.0};

/// One row of the sweep plus the trial's retained blame journal (empty
/// unless --trace-out is armed).
struct LevelOut {
    std::string row;
    std::vector<core::DiagnosisRecord> trace_records;
    std::uint64_t trace_total = 0;
};

}  // namespace

int main(int argc, char** argv) {
    using namespace concilium;
    const auto args = bench::parse_args(argc, argv);
    bench::BenchReport report("soak_attacks", args);

    runtime::AttackCampaign base = args.attack;
    if (base.empty()) {
        base = runtime::AttackCampaign::parse(
            "equivocate:0.06,replay:0.06,slander:0.06,spam:0.04,collude:0.05");
    }

    // The runtime simulates every probe packet, so the world stays small
    // (the soak_chaos scale).
    sim::ScenarioParams world_params;
    world_params.topology = net::small_params();
    world_params.topology.end_hosts = args.full ? 1500 : 600;
    world_params.topology.stub_domains = args.full ? 40 : 16;
    world_params.overlay_nodes_override = args.full ? 220 : 90;
    world_params.duration = 2 * util::kHour;
    world_params.seed = args.seed;
    const sim::Scenario world(world_params);
    const auto& overlay_net = world.overlay_net();

    const std::size_t message_count =
        args.samples != 0 ? args.samples : (args.full ? 300 : 120);

    bench::print_header("soak-attacks",
                        "evidence-integrity defenses vs campaign intensity");
    bench::print_param("base_spec", base.to_string());
    bench::print_param("overlay_nodes",
                       static_cast<double>(overlay_net.size()));
    bench::print_param("messages", static_cast<double>(message_count));
    bench::print_param("seed", static_cast<double>(args.seed));
    std::printf("%-10s %-10s %-10s %-10s %-8s %-8s %-12s %-10s %-10s %-8s\n",
                "intensity", "attackers", "delivered", "diagnosed", "caught",
                "evaded", "evasion_rate", "slander_ok", "false_acc",
                "proofs");

    const auto driver = bench::make_driver(args, 107);
    const std::size_t levels = std::size(kIntensities);

    // Windowed sim-clock series: false accusations by the virtual minute
    // they were diagnosed in (sum mode commutes across --jobs).
    auto& false_acc_by_minute = util::metrics::Registry::global().series(
        "attack.false_accusations.by_minute", util::kMinute, 240,
        util::metrics::SeriesMetric::Mode::kSum);

    const auto run_level = [&](std::uint64_t trial, util::Rng& rng) {
        const double intensity = kIntensities[trial];
        const runtime::AttackCampaign campaign = base.scaled(intensity);

        // Recruitment is a pure function of the trial substream.
        auto recruit_rng = rng.fork();
        auto behaviors = runtime::materialize_attackers(
            campaign, overlay_net.size(), recruit_rng);
        if (intensity == 0.0) behaviors.clear();  // all honest baseline

        runtime::RuntimeParams params;
        core::DiagnosisTrace trace(512);
        net::EventSim sim;
        runtime::Cluster cluster(sim, world.timeline(), overlay_net,
                                 world.trees(), params, behaviors,
                                 rng.fork());
        cluster.set_trace(&trace);
        cluster.start();
        sim.run_until(3 * util::kMinute);

        const auto is_byzantine = [&](overlay::MemberIndex m) {
            return !behaviors.empty() && behaviors[m].byzantine();
        };

        std::size_t delivered = 0;
        std::size_t diagnosed = 0;
        std::size_t false_accusations = 0;
        std::vector<bool> dropped_one(overlay_net.size(), false);
        std::vector<bool> blamed_once(overlay_net.size(), false);
        for (std::size_t i = 0; i < message_count; ++i) {
            const auto from = static_cast<overlay::MemberIndex>(
                rng.uniform_index(overlay_net.size()));
            cluster.send(
                from, util::NodeId::random(rng),
                [&](const runtime::Cluster::MessageOutcome& res) {
                    if (res.delivered) {
                        ++delivered;
                        return;
                    }
                    if (!res.true_drop_hop.has_value() &&
                        !res.true_network_drop) {
                        return;
                    }
                    ++diagnosed;
                    if (res.true_drop_hop.has_value()) {
                        dropped_one[res.route[*res.true_drop_hop]] = true;
                    }
                    if (!res.blamed.has_value()) return;
                    for (overlay::MemberIndex m = 0;
                         m < overlay_net.size(); ++m) {
                        if (overlay_net.member(m).id() == *res.blamed) {
                            blamed_once[m] = true;
                            if (!is_byzantine(m)) {
                                ++false_accusations;
                                false_acc_by_minute.observe(sim.now());
                            }
                            break;
                        }
                    }
                });
            // Pace the workload across the virtual two hours.
            sim.run_until(sim.now() + 45 * util::kSecond);
        }
        sim.run_until(sim.now() + 5 * util::kMinute);

        // Score the campaign against the repository, as a third party would.
        std::size_t attackers = 0;
        std::size_t with_drops = 0;
        std::size_t caught = 0;
        std::size_t evaded = 0;
        std::size_t proofs = 0;
        std::size_t slander_successes = 0;
        for (overlay::MemberIndex m = 0; m < overlay_net.size(); ++m) {
            const bool byz = is_byzantine(m);
            if (byz) ++attackers;

            bool proven = false;
            for (const auto& proof : cluster.equivocation_proofs_against(m)) {
                if (cluster.verify(proof, m) ==
                    core::EquivocationCheck::kOk) {
                    proven = true;
                }
            }
            if (proven) ++proofs;

            bool verified_accusation = false;
            for (const auto& acc : cluster.accusations_against(m)) {
                const bool ok =
                    cluster.verify(acc) == core::AccusationCheck::kOk;
                if (ok) verified_accusation = true;
                if (ok && !behaviors.empty()) {
                    // Was this verified accusation filed by a slanderer?
                    for (overlay::MemberIndex a = 0;
                         a < overlay_net.size(); ++a) {
                        if (overlay_net.member(a).id() == acc.accuser &&
                            behaviors[a].slander) {
                            ++slander_successes;
                            break;
                        }
                    }
                }
            }

            if (!byz) continue;
            const bool detected =
                blamed_once[m] || verified_accusation || proven;
            if (detected) ++caught;
            if (dropped_one[m] && !detected) ++evaded;
            if (dropped_one[m]) ++with_drops;
        }

        auto& reg = util::metrics::Registry::global();
        reg.counter("attack.diagnosed_messages")
            .add(static_cast<std::int64_t>(diagnosed));
        reg.counter("attack.false_accusations")
            .add(static_cast<std::int64_t>(false_accusations));
        reg.counter("attack.attackers_with_drops")
            .add(static_cast<std::int64_t>(with_drops));
        reg.counter("attack.attackers_caught")
            .add(static_cast<std::int64_t>(caught));
        reg.counter("attack.attackers_evaded")
            .add(static_cast<std::int64_t>(evaded));
        reg.counter("attack.slander_successes")
            .add(static_cast<std::int64_t>(slander_successes));

        const double evasion_rate =
            with_drops == 0 ? 0.0
                            : static_cast<double>(evaded) /
                                  static_cast<double>(with_drops);
        LevelOut out;
        append(out.row,
               "%-10.2g %-10zu %-10zu %-10zu %-8zu %-8zu %-12.4f %-10zu "
               "%-10zu %-8zu\n",
               intensity, attackers, delivered, diagnosed, caught, evaded,
               evasion_rate, slander_successes, false_accusations, proofs);
        if (bench::trace_out_armed()) {
            out.trace_records = trace.records();
            out.trace_total = trace.total_recorded();
        }
        return out;
    };

    driver.run(
        levels,
        [&](std::uint64_t trial, util::Rng& rng) {
            return run_level(trial, rng);
        },
        [](std::uint64_t, LevelOut&& out) {
            std::fputs(out.row.c_str(), stdout);
            bench::trace_sink_add(std::move(out.trace_records),
                                  out.trace_total);
        });
    return 0;
}
