// Ablations over the blame engine's design choices (DESIGN.md):
//
//  1. fuzzy OR operator: max (the paper's choice) vs averaging,
//  2. probe accuracy a sweep,
//  3. Delta admission-window sweep,
//  4. guilty-blame threshold sweep,
//  5. snapshots consulted per judgment (Section 4.2's vouching argument),
//  6. recursive revision (Section 3.5) on vs off.
//
// Each row reports the conviction rates p_good / p_faulty (or end-to-end
// attribution accuracy) the configuration achieves on the same world.

#include <cstdio>

#include "bench_common.h"
#include "sim/experiments.h"

int main(int argc, char** argv) {
    using namespace concilium;
    const auto args = bench::parse_args(argc, argv);
    bench::BenchReport report("ablation_blame", args);
    const std::size_t samples =
        args.samples != 0 ? args.samples : (args.full ? 60000 : 15000);

    bench::print_header("ablation", "blame-engine design choices");
    bench::print_param("samples", static_cast<double>(samples));
    bench::print_param("seed", static_cast<double>(args.seed));

    // --- 1. OR operator -------------------------------------------------
    {
        const sim::Scenario scenario(bench::paper_scenario(args));
        std::printf("\n# section: OR operator (threshold 0.4)\n");
        std::printf("%-10s %-10s %-10s\n", "operator", "p_good", "p_faulty");
        for (const auto op : {core::BlameParams::OrOperator::kMax,
                              core::BlameParams::OrOperator::kMean}) {
            sim::BlameExperimentParams exp;
            exp.samples = samples;
            exp.or_operator = op;
            const auto driver = bench::make_driver(args, 41);
            const auto r = sim::run_blame_experiment(scenario, exp, driver);
            std::printf("%-10s %-10.4f %-10.4f\n",
                        op == core::BlameParams::OrOperator::kMax ? "max"
                                                                  : "mean",
                        r.p_good, r.p_faulty);
        }
    }

    // --- 2. probe accuracy ----------------------------------------------
    {
        std::printf("\n# section: probe accuracy sweep\n");
        std::printf("%-10s %-10s %-10s\n", "accuracy", "p_good", "p_faulty");
        for (const double a : {0.7, 0.8, 0.9, 0.95, 0.99}) {
            sim::ScenarioParams p = bench::paper_scenario(args);
            p.blame.probe_accuracy = a;
            const sim::Scenario scenario(p);
            sim::BlameExperimentParams exp;
            exp.samples = samples;
            const auto driver = bench::make_driver(args, 43);
            const auto r = sim::run_blame_experiment(scenario, exp, driver);
            std::printf("%-10.2f %-10.4f %-10.4f\n", a, r.p_good, r.p_faulty);
        }
    }

    // --- 3. Delta window -------------------------------------------------
    {
        std::printf("\n# section: Delta admission-window sweep\n");
        std::printf("%-10s %-10s %-10s\n", "delta_s", "p_good", "p_faulty");
        for (const int delta_s : {15, 30, 60, 120, 300}) {
            sim::ScenarioParams p = bench::paper_scenario(args);
            p.blame.delta = delta_s * util::kSecond;
            const sim::Scenario scenario(p);
            sim::BlameExperimentParams exp;
            exp.samples = samples;
            const auto driver = bench::make_driver(args, 47);
            const auto r = sim::run_blame_experiment(scenario, exp, driver);
            std::printf("%-10d %-10.4f %-10.4f\n", delta_s, r.p_good,
                        r.p_faulty);
        }
    }

    // --- 4. verdict threshold ---------------------------------------------
    {
        const sim::Scenario scenario(bench::paper_scenario(args));
        std::printf("\n# section: guilty-blame threshold sweep\n");
        std::printf("%-10s %-10s %-10s\n", "threshold", "p_good",
                    "p_faulty");
        for (const double thr : {0.2, 0.3, 0.4, 0.5, 0.6, 0.8}) {
            sim::BlameExperimentParams exp;
            exp.samples = samples;
            exp.guilty_threshold = thr;
            const auto driver = bench::make_driver(args, 53);
            const auto r = sim::run_blame_experiment(scenario, exp, driver);
            std::printf("%-10.2f %-10.4f %-10.4f\n", thr, r.p_good,
                        r.p_faulty);
        }
    }

    // --- 5. vouching peers (Section 4.2's coverage argument) ----------------
    {
        const sim::Scenario scenario(bench::paper_scenario(args));
        std::printf("\n# section: snapshots consulted per judgment\n");
        std::printf("%-12s %-10s %-10s\n", "reporters", "p_good",
                    "p_faulty");
        for (const std::size_t cap : {std::size_t{0}, std::size_t{2},
                                      std::size_t{5}, std::size_t{15},
                                      std::size_t{40}, SIZE_MAX}) {
            sim::BlameExperimentParams exp;
            exp.samples = samples;
            exp.reporter_cap = cap;
            const auto driver = bench::make_driver(args, 61);
            const auto r = sim::run_blame_experiment(scenario, exp, driver);
            if (cap == SIZE_MAX) {
                std::printf("%-12s %-10.4f %-10.4f\n", "all", r.p_good,
                            r.p_faulty);
            } else {
                std::printf("%-12zu %-10.4f %-10.4f\n", cap, r.p_good,
                            r.p_faulty);
            }
        }
    }

    // --- 6. recursive revision --------------------------------------------
    {
        const sim::Scenario scenario(bench::paper_scenario(args));
        std::printf("\n# section: recursive revision (Section 3.5)\n");
        std::printf("%-10s %-10s %-14s %-16s %-16s\n", "revision",
                    "accuracy", "wrong_node", "net_as_node", "node_as_net");
        for (const bool enabled : {true, false}) {
            sim::AttributionExperimentParams exp;
            exp.samples = args.full ? 2000 : 600;
            exp.enable_revision = enabled;
            exp.min_route_length = 4;
            const auto driver = bench::make_driver(args, 59);
            const auto r =
                sim::run_attribution_experiment(scenario, exp, driver);
            std::printf("%-10s %-10.4f %-14zu %-16zu %-16zu\n",
                        enabled ? "on" : "off", r.accuracy(),
                        r.blamed_wrong_node, r.blamed_node_wrongly,
                        r.blamed_network_wrongly);
        }
    }
    return 0;
}
