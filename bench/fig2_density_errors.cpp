// Figure 2: jump-table density-test error rates, NO suppression attacks.
//
//  (a) false positive probability vs gamma (independent of the colluding
//      fraction c when attackers cannot skew density estimates),
//  (b) false negative probability vs gamma for several c,
//  (c) error rates at the gamma minimizing FP + FN, per c.
//
// Paper reference points (Section 4.1): with c = 30%, FP 8.5% / FN 14.8%;
// with c = 20%, FN drops to 3.5%.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "overlay/density.h"

int main(int argc, char** argv) {
    using namespace concilium;
    const auto args = bench::parse_args(argc, argv);
    bench::BenchReport report("fig2_density_errors", args);
    const util::OverlayGeometry geometry{.digits = 32};
    // The paper does not publish its N for this figure; we use an overlay
    // large enough that row occupancies are in the informative regime.
    const double n = args.full ? 100000.0 : 10000.0;

    bench::print_header("2", "density-test errors without suppression");
    bench::print_param("N", n);
    bench::print_param("digits", geometry.digits);

    const std::vector<double> collusion{0.10, 0.20, 0.30};
    const auto driver = bench::make_driver(args, 2);

    std::printf("\n# section: (a)+(b) error rates vs gamma\n");
    std::printf("%-8s %-12s", "gamma", "fp");
    for (const double c : collusion) std::printf(" fn_c%-9.0f", c * 100);
    std::printf("\n");
    bench::print_rows(driver, 21, [&](std::size_t row) {
        const double gamma = 1.0 + 0.1 * static_cast<double>(row);
        const double fp =
            overlay::density_false_positive(gamma, n, n, geometry);
        char buf[64];
        std::snprintf(buf, sizeof buf, "%-8.2f %-12.5f", gamma, fp);
        std::string line = buf;
        for (const double c : collusion) {
            std::snprintf(buf, sizeof buf, " %-12.5f",
                          overlay::density_false_negative(gamma, n, c * n,
                                                          geometry));
            line += buf;
        }
        line += '\n';
        return line;
    });

    std::printf("\n# section: (c) optimal gamma per colluding fraction\n");
    std::printf("%-8s %-10s %-12s %-12s %-12s\n", "c", "gamma*", "fp", "fn",
                "fp+fn");
    bench::print_rows(driver, collusion.size(), [&](std::size_t row) {
        const double c = collusion[row];
        const auto best =
            overlay::optimal_gamma(n, n, c * n, geometry, 1.0, 4.0, 301);
        char buf[96];
        std::snprintf(buf, sizeof buf, "%-8.2f %-10.3f %-12.5f %-12.5f %-12.5f\n",
                      c, best.gamma, best.false_positive, best.false_negative,
                      best.total_error());
        return std::string(buf);
    });
    std::printf("# paper: c=0.30 -> fp 0.085, fn 0.148; c=0.20 -> fn 0.035\n");
    return 0;
}
