// Figure 2: jump-table density-test error rates, NO suppression attacks.
//
//  (a) false positive probability vs gamma (independent of the colluding
//      fraction c when attackers cannot skew density estimates),
//  (b) false negative probability vs gamma for several c,
//  (c) error rates at the gamma minimizing FP + FN, per c.
//
// Paper reference points (Section 4.1): with c = 30%, FP 8.5% / FN 14.8%;
// with c = 20%, FN drops to 3.5%.

#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "overlay/density.h"

int main(int argc, char** argv) {
    using namespace concilium;
    const auto args = bench::parse_args(argc, argv);
    const util::OverlayGeometry geometry{.digits = 32};
    // The paper does not publish its N for this figure; we use an overlay
    // large enough that row occupancies are in the informative regime.
    const double n = args.full ? 100000.0 : 10000.0;

    bench::print_header("2", "density-test errors without suppression");
    bench::print_param("N", n);
    bench::print_param("digits", geometry.digits);

    const std::vector<double> collusion{0.10, 0.20, 0.30};

    std::printf("\n# section: (a)+(b) error rates vs gamma\n");
    std::printf("%-8s %-12s", "gamma", "fp");
    for (const double c : collusion) std::printf(" fn_c%-9.0f", c * 100);
    std::printf("\n");
    for (double gamma = 1.0; gamma <= 3.001; gamma += 0.1) {
        const double fp =
            overlay::density_false_positive(gamma, n, n, geometry);
        std::printf("%-8.2f %-12.5f", gamma, fp);
        for (const double c : collusion) {
            std::printf(" %-12.5f", overlay::density_false_negative(
                                        gamma, n, c * n, geometry));
        }
        std::printf("\n");
    }

    std::printf("\n# section: (c) optimal gamma per colluding fraction\n");
    std::printf("%-8s %-10s %-12s %-12s %-12s\n", "c", "gamma*", "fp", "fn",
                "fp+fn");
    for (const double c : collusion) {
        const auto best =
            overlay::optimal_gamma(n, n, c * n, geometry, 1.0, 4.0, 301);
        std::printf("%-8.2f %-10.3f %-12.5f %-12.5f %-12.5f\n", c,
                    best.gamma, best.false_positive, best.false_negative,
                    best.total_error());
    }
    std::printf("# paper: c=0.30 -> fp 0.085, fn 0.148; c=0.20 -> fn 0.035\n");
    return 0;
}
