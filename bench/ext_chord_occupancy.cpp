// Extension: the jump-table occupancy test ported to Chord finger tables.
//
// Section 3.1 claims the test "can be extended to other overlays in a
// straightforward manner"; this bench demonstrates it.  Distinct-finger
// counts are a Poisson-binomial sum exactly like Pastry slot occupancy, so
// the same normal approximation, gamma test, and error analysis carry over.

#include <cstdio>

#include "bench_common.h"
#include "overlay/chord.h"
#include "test_support_members.h"

int main(int argc, char** argv) {
    using namespace concilium;
    const auto args = bench::parse_args(argc, argv);

    bench::print_header("ext-chord",
                        "occupancy test generalized to Chord fingers");
    bench::print_param("seed", static_cast<double>(args.seed));

    // --- model vs Monte Carlo (the Chord twin of Figure 1) -----------------
    std::printf("%-8s %-12s %-12s %-12s %-12s\n", "N", "model_mean",
                "model_sd", "mc_mean", "mc_sd");
    for (const std::size_t n : {128u, 512u, 2048u, 8192u}) {
        const auto model = overlay::chord_finger_model(static_cast<double>(n));
        crypto::CertificateAuthority ca(args.seed + n);
        const overlay::ChordNetwork chord(
            bench::make_members(ca, n), overlay::ChordNetwork::ChordParams{});
        util::OnlineMoments mc;
        for (overlay::MemberIndex m = 0; m < chord.size(); ++m) {
            mc.add(chord.distinct_fingers(m));
        }
        std::printf("%-8zu %-12.3f %-12.3f %-12.3f %-12.3f\n", n,
                    model.mean_count(), model.stddev_count(), mc.mean(),
                    mc.stddev());
    }

    // --- density-test error rates (the Chord twin of Figure 2) -------------
    const double big_n = 100000;
    std::printf("\n# section: density-test errors, N = %.0f\n", big_n);
    std::printf("%-8s %-12s %-12s %-12s %-12s\n", "gamma", "fp", "fn_c10",
                "fn_c20", "fn_c30");
    for (double gamma = 1.0; gamma <= 1.501; gamma += 0.05) {
        std::printf("%-8.2f %-12.5f %-12.5f %-12.5f %-12.5f\n", gamma,
                    overlay::chord_density_false_positive(gamma, big_n, big_n),
                    overlay::chord_density_false_negative(gamma, big_n,
                                                          0.1 * big_n),
                    overlay::chord_density_false_negative(gamma, big_n,
                                                          0.2 * big_n),
                    overlay::chord_density_false_negative(gamma, big_n,
                                                          0.3 * big_n));
    }
    std::printf(
        "# note: Chord's distinct-finger count grows only as log2(N), so a\n"
        "# colluder pool of c*N sits log2(1/c) ~ 2.3 fingers below honest\n"
        "# tables at c = 0.2 -- a narrower gap than Pastry's, demanding a\n"
        "# tighter gamma.  The machinery is identical.\n");
    return 0;
}
