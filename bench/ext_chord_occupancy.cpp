// Extension: the jump-table occupancy test ported to Chord finger tables.
//
// Section 3.1 claims the test "can be extended to other overlays in a
// straightforward manner"; this bench demonstrates it.  Distinct-finger
// counts are a Poisson-binomial sum exactly like Pastry slot occupancy, so
// the same normal approximation, gamma test, and error analysis carry over.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "overlay/chord.h"
#include "test_support_members.h"

int main(int argc, char** argv) {
    using namespace concilium;
    const auto args = bench::parse_args(argc, argv);
    bench::BenchReport report("ext_chord_occupancy", args);

    bench::print_header("ext-chord",
                        "occupancy test generalized to Chord fingers");
    bench::print_param("seed", static_cast<double>(args.seed));

    const auto driver = bench::make_driver(args, 67);

    // --- model vs Monte Carlo (the Chord twin of Figure 1) -----------------
    // One row = one Chord network build; the networks are independent, so
    // rows fan out across driver workers and print back in N order.
    std::printf("%-8s %-12s %-12s %-12s %-12s\n", "N", "model_mean",
                "model_sd", "mc_mean", "mc_sd");
    const std::vector<std::size_t> populations{128, 512, 2048, 8192};
    bench::print_rows(driver, populations.size(), [&](std::size_t row) {
        const std::size_t n = populations[row];
        const auto model = overlay::chord_finger_model(static_cast<double>(n));
        crypto::CertificateAuthority ca(args.seed + n);
        const overlay::ChordNetwork chord(
            bench::make_members(ca, n), overlay::ChordNetwork::ChordParams{});
        util::OnlineMoments mc;
        for (overlay::MemberIndex m = 0; m < chord.size(); ++m) {
            mc.add(chord.distinct_fingers(m));
        }
        char buf[96];
        std::snprintf(buf, sizeof buf, "%-8zu %-12.3f %-12.3f %-12.3f %-12.3f\n",
                      n, model.mean_count(), model.stddev_count(), mc.mean(),
                      mc.stddev());
        return std::string(buf);
    });

    // --- density-test error rates (the Chord twin of Figure 2) -------------
    const double big_n = 100000;
    std::printf("\n# section: density-test errors, N = %.0f\n", big_n);
    std::printf("%-8s %-12s %-12s %-12s %-12s\n", "gamma", "fp", "fn_c10",
                "fn_c20", "fn_c30");
    bench::print_rows(driver, 11, [&](std::size_t row) {
        const double gamma = 1.0 + 0.05 * static_cast<double>(row);
        char buf[96];
        std::snprintf(
            buf, sizeof buf, "%-8.2f %-12.5f %-12.5f %-12.5f %-12.5f\n", gamma,
            overlay::chord_density_false_positive(gamma, big_n, big_n),
            overlay::chord_density_false_negative(gamma, big_n, 0.1 * big_n),
            overlay::chord_density_false_negative(gamma, big_n, 0.2 * big_n),
            overlay::chord_density_false_negative(gamma, big_n, 0.3 * big_n));
        return std::string(buf);
    });
    std::printf(
        "# note: Chord's distinct-finger count grows only as log2(N), so a\n"
        "# colluder pool of c*N sits log2(1/c) ~ 2.3 fingers below honest\n"
        "# tables at c = 0.2 -- a narrower gap than Pastry's, demanding a\n"
        "# tighter gamma.  The machinery is identical.\n");
    return 0;
}
