// Validating the Section 4.3 accuracy assumption.
//
// The paper *assumes* "hosts can identify whether a link was up or down with
// 90% accuracy", citing Duffield's striped-probe results.  This bench checks
// that assumption against our own substrate: it runs heavyweight striped
// sessions with MINC inference at random instants of the failing world and
// scores the resulting up/down link classifications against ground truth.
//
// Columns split the accuracy by true link state, since the failure model's
// 5% down fraction makes raw accuracy easy to inflate.

#include <cstdio>

#include "bench_common.h"
#include "net/transport.h"
#include "tomography/inference.h"
#include "tomography/probing.h"
#include "tomography/snapshot.h"

int main(int argc, char** argv) {
    using namespace concilium;
    const auto args = bench::parse_args(argc, argv);
    bench::BenchReport report("ablation_tomography", args);
    sim::ScenarioParams params = bench::paper_scenario(args);
    const sim::Scenario world(params);
    const std::size_t sessions =
        args.samples != 0 ? args.samples : (args.full ? 600 : 200);

    bench::print_header("ablation-tomography",
                        "measured probe accuracy vs the assumed 0.9");
    bench::print_param("overlay_nodes",
                       static_cast<double>(world.overlay_net().size()));
    bench::print_param("sessions", static_cast<double>(sessions));
    bench::print_param("seed", static_cast<double>(args.seed));

    const auto pass = [&](net::LinkId l, util::SimTime t) {
        return world.timeline().is_up(l, t) ? 1.0 : 0.0;
    };

    // One trial = one striped session at a random instant.  Each stripes
    // value gets its own driver (disjoint seed offsets) so the sessions'
    // substreams never overlap across table rows.
    struct SessionScore {
        long up_right = 0;
        long up_total = 0;
        long down_right = 0;
        long down_total = 0;
    };
    std::printf("%-10s %-12s %-12s %-12s %-12s\n", "stripes", "acc_up",
                "acc_down", "overall", "down_frac");
    for (const int stripes : {20, 50, 100, 200}) {
        const auto driver =
            bench::make_driver(args, 61 + static_cast<std::uint64_t>(stripes));
        long up_right = 0;
        long up_total = 0;
        long down_right = 0;
        long down_total = 0;
        driver.run(
            sessions,
            [&](std::uint64_t, util::Rng& rng) {
                SessionScore score;
                const auto m = static_cast<overlay::MemberIndex>(
                    rng.uniform_index(world.overlay_net().size()));
                const auto& tree = world.tree(m);
                if (tree.leaves().empty()) return score;
                const auto t = static_cast<util::SimTime>(rng.uniform(
                    0.0, static_cast<double>(world.params().duration)));
                tomography::HeavyweightParams hw;
                hw.probe_count = stripes;
                const auto session = tomography::run_heavyweight_session(
                    tree, pass, t, hw, {}, rng);
                const auto inference =
                    tomography::infer_link_loss(tree, session.probes);
                // Classify with the snapshot layer's down threshold and score
                // against ground truth at the session midpoint.
                const util::SimTime mid =
                    (session.started_at + session.finished_at) / 2;
                for (const auto& e : inference.links) {
                    // Snapshots omit unobservable links (no probe evidence);
                    // they are neither right nor wrong.
                    if (!e.observable) continue;
                    const bool classified_up =
                        e.loss <
                        tomography::SnapshotParams{}.down_loss_threshold;
                    const bool truly_up = world.timeline().is_up(e.link, mid);
                    if (truly_up) {
                        ++score.up_total;
                        if (classified_up) ++score.up_right;
                    } else {
                        ++score.down_total;
                        if (!classified_up) ++score.down_right;
                    }
                }
                return score;
            },
            [&](std::uint64_t, SessionScore&& score) {
                up_right += score.up_right;
                up_total += score.up_total;
                down_right += score.down_right;
                down_total += score.down_total;
            });
        const double acc_up =
            up_total == 0 ? 0.0 : static_cast<double>(up_right) / up_total;
        const double acc_down = down_total == 0
                                    ? 0.0
                                    : static_cast<double>(down_right) /
                                          down_total;
        const double overall =
            static_cast<double>(up_right + down_right) /
            static_cast<double>(up_total + down_total);
        std::printf("%-10d %-12.4f %-12.4f %-12.4f %-12.4f\n", stripes,
                    acc_up, acc_down, overall,
                    static_cast<double>(down_total) /
                        static_cast<double>(up_total + down_total));
    }
    std::printf("# paper assumption: links classified up/down with 0.9 "
                "accuracy (Section 4.3, after Duffield et al.)\n");
    return 0;
}
