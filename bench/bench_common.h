// Shared helpers for the figure-reproduction binaries.
//
// Every bench prints a self-describing, machine-parsable table to stdout:
// a `# figure:` header, `# param:` lines recording the configuration, and
// whitespace-separated columns.  Pass --full to run at the paper's SCAN
// scale (slower); pass --seed N to change the deterministic seed; pass
// --jobs N to set the experiment-driver worker count (default: all cores).
// Output is byte-identical for any --jobs value, so figures regenerated on
// different machines diff clean.  Pass --metrics-out FILE to additionally
// dump the process metrics registry as JSON at exit; the table on stdout is
// unaffected, and the snapshot's "metrics" section is itself byte-identical
// across --jobs values (only the "timing" section varies).

#pragma once

#include <cerrno>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <iterator>
#include <string>
#include <utility>
#include <vector>

#include <stdexcept>

#include "core/trace.h"
#include "net/chaos.h"
#include "net/topology_gen.h"
#include "runtime/attack.h"
#include "sim/experiment_driver.h"
#include "sim/scenario.h"
#include "util/json.h"
#include "util/metrics.h"
#include "util/spans.h"

namespace concilium::bench {

struct BenchArgs {
    bool full = false;
    std::uint64_t seed = 1;
    /// 0 = per-bench default.
    std::size_t samples = 0;
    /// Experiment-driver workers; 0 = hardware_concurrency.
    std::size_t jobs = 0;
    /// Empty = no metrics dump.
    std::string metrics_out;
    /// Empty = no BENCH_<name>.json perf snapshot (see BenchReport).
    std::string bench_out;
    /// Empty = span recorder stays disabled; otherwise the Chrome trace
    /// JSON dumped at exit (see util/spans.h and OBSERVABILITY.md).
    std::string spans_out;
    /// Empty = no DiagnosisTrace JSON dump; see trace_sink_add below.
    std::string trace_out;
    /// Parsed --chaos spec (see net/chaos.h); empty = no fault injection.
    net::FaultSpec chaos;
    /// Parsed --attack spec (see runtime/attack.h); empty = all honest.
    runtime::AttackCampaign attack;
};

[[noreturn]] inline void usage(const char* argv0) {
    std::fprintf(stderr,
                 "usage: %s [--full] [--seed N] [--samples N] [--jobs N] "
                 "[--metrics-out FILE] [--bench-out FILE] [--spans-out FILE] "
                 "[--trace-out FILE] [--chaos SPEC] "
                 "[--attack SPEC]\n"
                 "  --spans-out FILE: arm the span recorder and dump Chrome "
                 "trace-event JSON at exit\n"
                 "  --trace-out FILE: dump the merged DiagnosisTrace blame "
                 "journal as JSON at exit\n"
                 "  --chaos SPEC: comma-separated kind:rate pairs, e.g. "
                 "flap:0.02,churn:0.01\n"
                 "    kinds: flap corr loss reorder dup churn ackdrop "
                 "ackdelay crash partition; rates in [0, 1]\n"
                 "  --attack SPEC: comma-separated kind:rate pairs, e.g. "
                 "equivocate:0.05,replay:0.1\n"
                 "    kinds: equivocate replay slander spam collude; "
                 "rates in [0, 1]\n",
                 argv0);
    std::exit(2);
}

namespace detail {

inline std::string g_metrics_out;  // NOLINT: set once in main, read at exit
inline std::string g_spans_out;    // NOLINT: same lifecycle
inline std::string g_trace_out;    // NOLINT: same lifecycle

inline void write_text_file(const char* flag, const std::string& path,
                            const std::string& text) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
        std::fprintf(stderr, "%s: cannot open '%s'\n", flag, path.c_str());
        return;
    }
    std::fwrite(text.data(), 1, text.size(), f);
    std::fclose(f);
}

inline void write_metrics_file() {
    if (detail::g_metrics_out.empty()) return;
    write_text_file("--metrics-out", detail::g_metrics_out,
                    util::metrics::Registry::global().snapshot().to_json());
}

inline void write_spans_file() {
    if (detail::g_spans_out.empty()) return;
    write_text_file("--spans-out", detail::g_spans_out,
                    util::spans::Recorder::global().to_chrome_json());
}

/// The merged DiagnosisTrace records across every trial, appended strictly
/// in driver merge order (so the dump is byte-identical across --jobs).
struct TraceSink {
    std::vector<core::DiagnosisRecord> records;
    std::uint64_t total_recorded = 0;
};

inline TraceSink g_trace_sink;  // NOLINT: merge-thread only

inline void write_trace_file() {
    if (detail::g_trace_out.empty()) return;
    std::string json = "{\"total_recorded\": " +
                       util::json_number(g_trace_sink.total_recorded) +
                       ",\n\"records\": [";
    for (std::size_t i = 0; i < g_trace_sink.records.size(); ++i) {
        json += (i == 0) ? "\n" : ",\n";
        json += g_trace_sink.records[i].to_json();
    }
    json += "\n]}\n";
    write_text_file("--trace-out", detail::g_trace_out, json);
}

}  // namespace detail

/// Arms the at-exit metrics dump.  The registry is snapshotted after main
/// returns, so every metric the bench touched is included; Registry::global()
/// is deliberately leaked, making the atexit hook safe during static
/// destruction.
inline void set_metrics_out(const std::string& path) {
    if (path.empty()) return;
    const bool first = detail::g_metrics_out.empty();
    detail::g_metrics_out = path;
    if (first) std::atexit(&detail::write_metrics_file);
}

/// Arms the span recorder and the at-exit Chrome trace dump.  Like the
/// metrics registry, the recorder's state is deliberately leaked, so the
/// atexit exporter is safe during static destruction.
inline void set_spans_out(const std::string& path) {
    if (path.empty()) return;
    const bool first = detail::g_spans_out.empty();
    detail::g_spans_out = path;
    util::spans::Recorder::global().enable();
    if (first) std::atexit(&detail::write_spans_file);
}

/// Arms the at-exit DiagnosisTrace dump.  Benches opt in per trial with
/// trace_sink_add() from their merge callback.
inline void set_trace_out(const std::string& path) {
    if (path.empty()) return;
    const bool first = detail::g_trace_out.empty();
    detail::g_trace_out = path;
    if (first) std::atexit(&detail::write_trace_file);
}

/// True when --trace-out was given (lets benches skip per-trial copying).
[[nodiscard]] inline bool trace_out_armed() {
    return !detail::g_trace_out.empty();
}

/// Appends one trial's retained blame journal to the merged --trace-out
/// dump.  Call from the driver *merge* callback only (single-threaded, in
/// trial order); a no-op when --trace-out was not given.
inline void trace_sink_add(std::vector<core::DiagnosisRecord>&& records,
                           std::uint64_t total_recorded) {
    if (!trace_out_armed()) return;
    detail::g_trace_sink.total_recorded += total_recorded;
    detail::g_trace_sink.records.insert(
        detail::g_trace_sink.records.end(),
        std::make_move_iterator(records.begin()),
        std::make_move_iterator(records.end()));
}

inline void trace_sink_add(const core::DiagnosisTrace& trace) {
    if (!trace_out_armed()) return;
    trace_sink_add(trace.records(), trace.total_recorded());
}

/// Strict non-negative integer parse; rejects the empty string, trailing
/// junk, signs, and overflow (strtoull would silently yield 0 or wrap).
inline std::uint64_t parse_u64(const char* argv0, const char* flag,
                               const char* text) {
    if (text[0] == '\0' || text[0] == '-' || text[0] == '+') {
        std::fprintf(stderr, "%s: expected a non-negative integer, got '%s'\n",
                     flag, text);
        usage(argv0);
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long value = std::strtoull(text, &end, 10);
    if (end == text || *end != '\0' || errno == ERANGE) {
        std::fprintf(stderr, "%s: expected a non-negative integer, got '%s'\n",
                     flag, text);
        usage(argv0);
    }
    return value;
}

/// Bench-specific flag hook for parse_args: called with the current argv
/// index when no shared flag matched; returns true after consuming it
/// (advancing `i` over any value), false to fall through to usage().
using ExtraArgFn = std::function<bool(int& i, int argc, char** argv)>;

inline BenchArgs parse_args(int argc, char** argv,
                            const ExtraArgFn& extra = {}) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0) {
            args.full = true;
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            args.seed = parse_u64(argv[0], "--seed", argv[++i]);
        } else if (std::strcmp(argv[i], "--samples") == 0 && i + 1 < argc) {
            args.samples = parse_u64(argv[0], "--samples", argv[++i]);
        } else if (std::strcmp(argv[i], "--jobs") == 0 && i + 1 < argc) {
            args.jobs = parse_u64(argv[0], "--jobs", argv[++i]);
        } else if (std::strcmp(argv[i], "--metrics-out") == 0 &&
                   i + 1 < argc) {
            args.metrics_out = argv[++i];
        } else if (std::strcmp(argv[i], "--bench-out") == 0 &&
                   i + 1 < argc) {
            args.bench_out = argv[++i];
        } else if (std::strcmp(argv[i], "--spans-out") == 0 &&
                   i + 1 < argc) {
            args.spans_out = argv[++i];
        } else if (std::strcmp(argv[i], "--trace-out") == 0 &&
                   i + 1 < argc) {
            args.trace_out = argv[++i];
        } else if (std::strcmp(argv[i], "--chaos") == 0 && i + 1 < argc) {
            // Strict: unknown fault kinds and out-of-range rates are
            // rejected here, not at scenario-construction time.
            try {
                args.chaos = net::FaultSpec::parse(argv[++i]);
            } catch (const std::invalid_argument& e) {
                std::fprintf(stderr, "%s\n", e.what());
                usage(argv[0]);
            }
        } else if (std::strcmp(argv[i], "--attack") == 0 && i + 1 < argc) {
            try {
                args.attack = runtime::AttackCampaign::parse(argv[++i]);
            } catch (const std::invalid_argument& e) {
                std::fprintf(stderr, "%s\n", e.what());
                usage(argv[0]);
            }
        } else if (extra && extra(i, argc, argv)) {
            // consumed by the bench's own flag hook
        } else {
            usage(argv[0]);
        }
    }
    set_metrics_out(args.metrics_out);
    set_spans_out(args.spans_out);
    set_trace_out(args.trace_out);
    return args;
}

/// The experiment driver for one bench section.  `seed_offset` keeps the
/// sections' trial substreams disjoint, mirroring the per-section seed
/// offsets the bespoke loops used.  Note: the driver seed feeds the trial
/// substreams but the worker count never reaches the output, preserving
/// the byte-identical-across---jobs guarantee.
inline sim::ExperimentDriver make_driver(const BenchArgs& args,
                                         std::uint64_t seed_offset) {
    return sim::ExperimentDriver(args.seed + seed_offset, args.jobs);
}

/// Fans `rows` independent row computations out over the driver and prints
/// the formatted lines back in row order.  `format_row(row)` returns the
/// complete text of one row (including its newline); it runs on a worker
/// thread and must only read shared state.  Used by the analytic sweeps,
/// where each row is an expensive numeric integral.
template <typename RowFn>
inline void print_rows(const sim::ExperimentDriver& driver, std::size_t rows,
                       RowFn&& format_row) {
    driver.run(
        rows,
        [&](std::uint64_t row, util::Rng&) {
            return format_row(static_cast<std::size_t>(row));
        },
        [](std::uint64_t, std::string&& line) {
            std::fputs(line.c_str(), stdout);
        });
}

/// The Section 4.2 world: Pastry on 3% of the end hosts of a SCAN-shaped
/// topology, 5% of links bad, two virtual hours.
inline sim::ScenarioParams paper_scenario(const BenchArgs& args,
                                          double malicious_fraction = 0.0) {
    sim::ScenarioParams p;
    p.topology = args.full ? net::scan_like_params() : net::medium_params();
    p.overlay_fraction = 0.03;
    p.duration = 2 * util::kHour;
    p.malicious_fraction = malicious_fraction;
    p.chaos = args.chaos;
    p.seed = args.seed;
    return p;
}

/// Perf-trajectory snapshot (the BENCH_<name>.json files).
///
/// Every bench can record its headline throughput numbers -- wall time
/// plus whichever of events/sec, probes/sec, and bytes/diagnosis apply --
/// into a small flat JSON file that tools/check_perf.py diffs against the
/// committed baseline in bench/baselines/.  Construction starts the wall
/// clock and snapshots the relevant metrics counters, so `rate()` fields
/// report only work done while the report was live.
class BenchReport {
  public:
    explicit BenchReport(std::string name)
        : name_(std::move(name)),
          start_(std::chrono::steady_clock::now()),
          events_at_start_(counter_value("net.events_executed")),
          probes_at_start_(counter_value("tomography.probes_issued")) {}

    /// Auto-writing mode: remembers `args.bench_out` and, if finish()/
    /// write() were never called explicitly, runs them at destruction.
    /// Lets a bench opt into the perf trajectory with a single line.
    BenchReport(std::string name, const BenchArgs& args)
        : BenchReport(std::move(name)) {
        auto_out_ = args.bench_out;
    }

    ~BenchReport() {
        if (auto_out_.empty() || finished_) return;
        finish();
        write(auto_out_);
    }

    BenchReport(const BenchReport&) = delete;
    BenchReport& operator=(const BenchReport&) = delete;

    /// Records a value under `key`; insertion order is emission order.
    void set(const std::string& key, double value) {
        for (auto& [k, v] : fields_) {
            if (k == key) {
                v = value;
                return;
            }
        }
        fields_.emplace_back(key, value);
    }

    /// Records `count` plus the derived `<key>_per_sec` over the report's
    /// lifetime so far.
    void set_rate(const std::string& key, double count) {
        set(key, count);
        const double w = wall_seconds();
        set(key + "_per_sec", w > 0.0 ? count / w : 0.0);
    }

    /// Seconds since construction.
    [[nodiscard]] double wall_seconds() const {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    /// Fills wall_seconds plus events/probes counts and rates from the
    /// process metrics registry (deltas since construction).  Call once,
    /// after the measured work.
    void finish() {
        finished_ = true;
        set("wall_seconds", wall_seconds());
        const double events = static_cast<double>(
            counter_value("net.events_executed") - events_at_start_);
        const double probes = static_cast<double>(
            counter_value("tomography.probes_issued") - probes_at_start_);
        if (events > 0.0) set_rate("events", events);
        if (probes > 0.0) set_rate("probes", probes);
    }

    [[nodiscard]] std::string to_json() const {
        std::string out = "{\n  \"bench\": " + util::json_quote(name_);
        for (const auto& [k, v] : fields_) {
            out += ",\n  " + util::json_quote(k) + ": " +
                   util::json_number(v);
        }
        out += "\n}\n";
        return out;
    }

    /// Writes the report; empty path = no-op (flag not given).
    void write(const std::string& path) const {
        if (path.empty()) return;
        std::FILE* f = std::fopen(path.c_str(), "w");
        if (f == nullptr) {
            std::fprintf(stderr, "--bench-out: cannot open '%s'\n",
                         path.c_str());
            return;
        }
        const std::string json = to_json();
        std::fwrite(json.data(), 1, json.size(), f);
        std::fclose(f);
    }

  private:
    static std::int64_t counter_value(std::string_view name) {
        return util::metrics::Registry::global().counter(name).value();
    }

    std::string name_;
    std::string auto_out_;
    bool finished_ = false;
    std::chrono::steady_clock::time_point start_;
    std::int64_t events_at_start_;
    std::int64_t probes_at_start_;
    std::vector<std::pair<std::string, double>> fields_;
};

inline void print_header(const char* figure, const char* caption) {
    std::printf("# figure: %s\n# caption: %s\n", figure, caption);
}

inline void print_param(const char* name, double value) {
    std::printf("# param: %s = %g\n", name, value);
}

inline void print_param(const char* name, const std::string& value) {
    std::printf("# param: %s = %s\n", name, value.c_str());
}

}  // namespace concilium::bench
