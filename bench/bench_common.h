// Shared helpers for the figure-reproduction binaries.
//
// Every bench prints a self-describing, machine-parsable table to stdout:
// a `# figure:` header, `# param:` lines recording the configuration, and
// whitespace-separated columns.  Pass --full to run at the paper's SCAN
// scale (slower); pass --seed N to change the deterministic seed.

#pragma once

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "net/topology_gen.h"
#include "sim/scenario.h"

namespace concilium::bench {

struct BenchArgs {
    bool full = false;
    std::uint64_t seed = 1;
    /// 0 = per-bench default.
    std::size_t samples = 0;
};

inline BenchArgs parse_args(int argc, char** argv) {
    BenchArgs args;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--full") == 0) {
            args.full = true;
        } else if (std::strcmp(argv[i], "--seed") == 0 && i + 1 < argc) {
            args.seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (std::strcmp(argv[i], "--samples") == 0 && i + 1 < argc) {
            args.samples = std::strtoull(argv[++i], nullptr, 10);
        } else {
            std::fprintf(stderr,
                         "usage: %s [--full] [--seed N] [--samples N]\n",
                         argv[0]);
            std::exit(2);
        }
    }
    return args;
}

/// The Section 4.2 world: Pastry on 3% of the end hosts of a SCAN-shaped
/// topology, 5% of links bad, two virtual hours.
inline sim::ScenarioParams paper_scenario(const BenchArgs& args,
                                          double malicious_fraction = 0.0) {
    sim::ScenarioParams p;
    p.topology = args.full ? net::scan_like_params() : net::medium_params();
    p.overlay_fraction = 0.03;
    p.duration = 2 * util::kHour;
    p.malicious_fraction = malicious_fraction;
    p.seed = args.seed;
    return p;
}

inline void print_header(const char* figure, const char* caption) {
    std::printf("# figure: %s\n# caption: %s\n", figure, caption);
}

inline void print_param(const char* name, double value) {
    std::printf("# param: %s = %g\n", name, value);
}

inline void print_param(const char* name, const std::string& value) {
    std::printf("# param: %s = %s\n", name, value.c_str());
}

}  // namespace concilium::bench
