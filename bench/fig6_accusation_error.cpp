// Figure 6: formal-accusation error rates vs the threshold m (w = 100).
//
// A node is formally accused after m guilty verdicts in a 100-slot window;
// with per-drop conviction probabilities p_good / p_faulty the window count
// is binomial, so FP = Pr(W >= m | p_good), FN = Pr(W < m | p_faulty)
// (Section 4.3).  The bench derives p_good / p_faulty from the same
// simulation that generates Figure 5, then prints the analytic curves.
// Paper: m = 6 suffices when probes are honest; m = 16 with 20% colluders.

#include <cstdio>

#include "bench_common.h"
#include "core/verdicts.h"
#include "sim/experiments.h"

namespace {

struct CasePs {
    double p_good;
    double p_faulty;
};

CasePs measure(double malicious, const concilium::bench::BenchArgs& args) {
    using namespace concilium;
    sim::ScenarioParams params = bench::paper_scenario(args, malicious);
    const sim::Scenario scenario(params);
    sim::BlameExperimentParams exp;
    exp.samples =
        args.samples != 0 ? args.samples : (args.full ? 100000 : 25000);
    const auto driver = bench::make_driver(args, 31);
    const auto result = sim::run_blame_experiment(scenario, exp, driver);
    return CasePs{result.p_good, result.p_faulty};
}

void print_case(const char* label, const CasePs& ps) {
    using namespace concilium;
    const int w = 100;
    std::printf("\n# section: %s (w=%d, p_good=%.4f, p_faulty=%.4f)\n",
                label, w, ps.p_good, ps.p_faulty);
    std::printf("%-6s %-14s %-14s\n", "m", "false_positive",
                "false_negative");
    for (int m = 1; m <= 40; ++m) {
        std::printf("%-6d %-14.6f %-14.6f\n", m,
                    core::accusation_false_positive(w, m, ps.p_good),
                    core::accusation_false_negative(w, m, ps.p_faulty));
    }
    const auto m_star =
        core::minimal_accusation_threshold(w, ps.p_good, ps.p_faulty, 0.01);
    if (m_star.has_value()) {
        std::printf("# minimal m with both error rates < 1%%: %d\n", *m_star);
    } else {
        std::printf("# no m drives both error rates < 1%%\n");
    }
}

}  // namespace

int main(int argc, char** argv) {
    using namespace concilium;
    const auto args = bench::parse_args(argc, argv);
    bench::BenchReport report("fig6_accusation_error", args);
    bench::print_header("6", "formal accusation error vs m (w=100)");
    bench::print_param("seed", static_cast<double>(args.seed));

    print_case("(a) faithful probe reports, measured", measure(0.0, args));
    std::printf("# paper (a): m = 6\n");
    print_case("(b) 20% colluders, measured", measure(0.20, args));
    std::printf("# paper (b): m = 16\n");

    // Reference curves at the paper's own operating probabilities.
    print_case("(a-ref) paper p values", CasePs{0.018, 0.938});
    print_case("(b-ref) paper p values", CasePs{0.084, 0.713});
    return 0;
}
