// Figure 4: "Trees Sampled vs Forest Coverage".
//
// For each host H, what fraction of the links in its forest F_H is covered
// as H combines its own probe tree with an increasing number of its peers'
// trees -- and how many peers can vouch for a covered link.  The paper: own
// tree alone covers ~25% of forest links, big initial gains, diminishing
// returns in the tail (core links are shared; last miles are not).

#include <cstdio>

#include "bench_common.h"
#include "sim/experiments.h"

int main(int argc, char** argv) {
    using namespace concilium;
    const auto args = bench::parse_args(argc, argv);
    bench::BenchReport report("fig4_link_coverage", args);
    const sim::ScenarioParams params = bench::paper_scenario(args);
    const sim::Scenario scenario(params);
    const std::size_t sample_hosts =
        args.samples != 0 ? args.samples : (args.full ? 200 : 80);

    bench::print_header("4", "trees sampled vs forest link coverage");
    bench::print_param("routers",
                       static_cast<double>(scenario.topology().router_count()));
    bench::print_param("links",
                       static_cast<double>(scenario.topology().link_count()));
    bench::print_param("overlay_nodes",
                       static_cast<double>(scenario.overlay_net().size()));
    bench::print_param("sampled_hosts", static_cast<double>(sample_hosts));
    bench::print_param("seed", static_cast<double>(args.seed));

    // Longest peer list bounds the x axis.
    std::size_t max_peers = 0;
    for (overlay::MemberIndex m = 0; m < scenario.overlay_net().size(); ++m) {
        max_peers = std::max(max_peers,
                             scenario.overlay_net().routing_peers(m).size());
    }

    const auto driver = bench::make_driver(args, 17);
    const auto curve = sim::run_coverage_experiment(scenario, max_peers,
                                                    sample_hosts, driver);

    std::printf("%-12s %-14s %-14s %-8s\n", "peer_trees", "coverage",
                "mean_vouchers", "hosts");
    for (std::size_t k = 0; k < curve.coverage.size(); ++k) {
        if (curve.hosts_counted[k] == 0) break;
        std::printf("%-12zu %-14.4f %-14.3f %-8d\n", k, curve.coverage[k],
                    curve.vouchers[k], curve.hosts_counted[k]);
    }
    std::printf("# paper: own tree only covers ~0.25 of forest links\n");
    return 0;
}
