// Micro-benchmarks (google-benchmark): throughput of Concilium's hot paths.

#include <benchmark/benchmark.h>

#include <cstdint>
#include <cstring>
#include <functional>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/blame.h"
#include "core/validation.h"
#include "crypto/certificates.h"
#include "dht/dht.h"
#include "net/event_sim.h"
#include "net/paths.h"
#include "net/topology_gen.h"
#include "overlay/advertisement.h"
#include "overlay/density.h"
#include "overlay/network.h"
#include "sim/experiment_driver.h"
#include "tomography/inference.h"
#include "tomography/probing.h"
#include "util/rng.h"

namespace {

using namespace concilium;

overlay::OverlayNetwork make_net(std::size_t n, std::uint64_t seed) {
    crypto::CertificateAuthority ca(seed);
    util::Rng rng(seed + 1);
    std::vector<overlay::Member> members;
    members.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
        auto adm = ca.admit(static_cast<crypto::IpAddress>(i));
        members.push_back(
            overlay::Member{std::move(adm.certificate), std::move(adm.keys)});
    }
    return overlay::OverlayNetwork(std::move(members), overlay::OverlayParams{},
                                   rng);
}

void BM_SignVerify(benchmark::State& state) {
    const auto keys = crypto::KeyPair::from_seed(1);
    crypto::KeyRegistry registry;
    registry.register_key(keys);
    const std::string message(256, 'x');
    for (auto _ : state) {
        const auto sig = keys.sign(message);
        benchmark::DoNotOptimize(registry.verify(keys.public_key(), message, sig));
    }
}
BENCHMARK(BM_SignVerify);

void BM_ComputeBlame(benchmark::State& state) {
    const auto probes_per_link = static_cast<int>(state.range(0));
    std::vector<net::LinkId> path;
    std::vector<core::ProbeResult> probes;
    util::Rng rng(2);
    for (net::LinkId l = 0; l < 12; ++l) {
        path.push_back(l);
        for (int p = 0; p < probes_per_link; ++p) {
            probes.push_back(core::ProbeResult{util::NodeId::random(rng), l,
                                               rng.bernoulli(0.9), 0});
        }
    }
    const auto judged = util::NodeId::random(rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            core::compute_blame(path, probes, 0, judged, core::BlameParams{}));
    }
}
BENCHMARK(BM_ComputeBlame)->Arg(1)->Arg(4)->Arg(16);

void BM_SecureRoute(benchmark::State& state) {
    const auto net = make_net(static_cast<std::size_t>(state.range(0)), 3);
    util::Rng rng(4);
    for (auto _ : state) {
        const auto key = util::NodeId::random(rng);
        benchmark::DoNotOptimize(
            net.route(static_cast<overlay::MemberIndex>(
                          rng.uniform_index(net.size())),
                      key));
    }
}
BENCHMARK(BM_SecureRoute)->Arg(200)->Arg(1000);

void BM_OverlayConstruction(benchmark::State& state) {
    const auto n = static_cast<std::size_t>(state.range(0));
    for (auto _ : state) {
        benchmark::DoNotOptimize(make_net(n, 5));
    }
}
BENCHMARK(BM_OverlayConstruction)->Arg(200)->Arg(1000)->Unit(benchmark::kMillisecond);

void BM_OccupancyModel(benchmark::State& state) {
    const util::OverlayGeometry geom{.digits = 32};
    for (auto _ : state) {
        benchmark::DoNotOptimize(overlay::occupancy_model(100000, geom));
    }
}
BENCHMARK(BM_OccupancyModel);

void BM_DensityErrorIntegral(benchmark::State& state) {
    const util::OverlayGeometry geom{.digits = 32};
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            overlay::density_false_positive(1.5, 10000, 10000, geom));
    }
}
BENCHMARK(BM_DensityErrorIntegral);

// A self-rescheduling POD event chain: each dispatch posts the next event,
// so the benchmark measures steady-state calendar-queue throughput on the
// path the Cluster's converted per-packet/per-judgment events take.
struct PodChain {
    net::EventSim* sim = nullptr;
    net::EventSim::HandlerId handler = 0;
    std::uint64_t fired = 0;
    static void dispatch(void* ctx, std::uint32_t, std::uint64_t,
                         std::uint64_t) {
        auto* chain = static_cast<PodChain*>(ctx);
        ++chain->fired;
        chain->sim->post_after(100, chain->handler);
    }
};

void BM_EventSimPodDispatch(benchmark::State& state) {
    net::EventSim sim;
    PodChain chain;
    chain.sim = &sim;
    chain.handler = sim.register_handler(&chain, &PodChain::dispatch);
    // 64 concurrent chains spread over the wheel.
    for (int i = 0; i < 64; ++i) sim.post_after(i, chain.handler);
    for (auto _ : state) {
        sim.run_until(sim.now() + 10000);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(chain.fired));
    benchmark::DoNotOptimize(chain.fired);
}
BENCHMARK(BM_EventSimPodDispatch);

void BM_EventSimCallbackDispatch(benchmark::State& state) {
    // The legacy std::function slab path, for comparison with POD dispatch.
    net::EventSim sim;
    std::uint64_t fired = 0;
    std::function<void()> chain;
    chain = [&] {
        ++fired;
        sim.schedule_after(100, chain);
    };
    for (int i = 0; i < 64; ++i) sim.schedule_after(i, chain);
    for (auto _ : state) {
        sim.run_until(sim.now() + 10000);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(fired));
    benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventSimCallbackDispatch);

void BM_BfsPathExtraction(benchmark::State& state) {
    util::Rng rng(6);
    const auto topo = net::generate_topology(net::medium_params(), rng);
    const net::PathOracle oracle(topo);
    const auto hosts = topo.end_hosts();
    std::vector<net::RouterId> dsts(hosts.begin(), hosts.begin() + 64);
    std::size_t src = 64;
    for (auto _ : state) {
        benchmark::DoNotOptimize(oracle.paths_from(hosts[src % hosts.size()], dsts));
        ++src;
    }
}
BENCHMARK(BM_BfsPathExtraction)->Unit(benchmark::kMillisecond);

void BM_MincInference(benchmark::State& state) {
    // A 3-level tree with 27 leaves and 500 stripes.
    net::Topology topo;
    const auto root = topo.add_router(net::RouterTier::kCore);
    std::vector<net::RouterId> hosts;
    for (int a = 0; a < 3; ++a) {
        const auto l1 = topo.add_router(net::RouterTier::kCore);
        topo.add_link(root, l1);
        for (int b = 0; b < 3; ++b) {
            const auto l2 = topo.add_router(net::RouterTier::kCore);
            topo.add_link(l1, l2);
            for (int c = 0; c < 3; ++c) {
                const auto leaf = topo.add_router(net::RouterTier::kEndHost);
                topo.add_link(l2, leaf);
                hosts.push_back(leaf);
            }
        }
    }
    const net::PathOracle oracle(topo);
    const tomography::ProbeTree tree(root, oracle.paths_from(root, hosts));
    util::Rng rng(7);
    const auto pass = [](net::LinkId l, util::SimTime) {
        return l % 5 == 0 ? 0.85 : 1.0;
    };
    const auto session = tomography::run_heavyweight_session(
        tree, pass, 0, tomography::HeavyweightParams{.probe_count = 500}, {},
        rng);
    for (auto _ : state) {
        benchmark::DoNotOptimize(
            tomography::infer_link_loss(tree, session.probes));
    }
}
BENCHMARK(BM_MincInference);

void BM_DhtPutGet(benchmark::State& state) {
    const auto net = make_net(300, 8);
    dht::Dht store(net, 4);
    util::Rng rng(9);
    const std::vector<std::uint8_t> value(512, 0xab);
    for (auto _ : state) {
        const auto key = util::NodeId::random(rng);
        store.put(0, key, value);
        benchmark::DoNotOptimize(store.get(1, key));
    }
}
BENCHMARK(BM_DhtPutGet);

void BM_ExperimentDriver(benchmark::State& state) {
    // Fan-out overhead of the experiment driver: 256 small trials (draw and
    // sum 1k uniforms each) merged in order, at the worker count in range(0).
    const auto jobs = static_cast<std::size_t>(state.range(0));
    const sim::ExperimentDriver driver(1, jobs);
    for (auto _ : state) {
        double total = 0.0;
        driver.run(
            256,
            [](std::uint64_t, util::Rng& rng) {
                double s = 0.0;
                for (int i = 0; i < 1000; ++i) s += rng.uniform(0.0, 1.0);
                return s;
            },
            [&](std::uint64_t, double&& s) { total += s; });
        benchmark::DoNotOptimize(total);
    }
}
BENCHMARK(BM_ExperimentDriver)->Arg(1)->Arg(2)->Arg(4);

void BM_AdvertisementValidation(benchmark::State& state) {
    crypto::CertificateAuthority ca(10);
    util::Rng rng(11);
    std::vector<overlay::Member> members;
    for (std::size_t i = 0; i < 300; ++i) {
        auto adm = ca.admit(static_cast<crypto::IpAddress>(i));
        members.push_back(
            overlay::Member{std::move(adm.certificate), std::move(adm.keys)});
    }
    const overlay::OverlayNetwork net(std::move(members),
                                      overlay::OverlayParams{}, rng);
    std::unordered_map<util::NodeId, crypto::PublicKey, util::NodeIdHash> keys;
    crypto::KeyRegistry registry;
    for (overlay::MemberIndex i = 0; i < net.size(); ++i) {
        keys.emplace(net.member(i).id(), net.member(i).keys.public_key());
        registry.register_key(net.member(i).keys);
    }
    const util::SimTime now = 10 * util::kMinute;
    const auto ad = overlay::make_advertisement(
        net, 3, now, [&](overlay::MemberIndex) { return now; });
    core::ValidationParams params;
    params.geometry = net.params().geometry;
    params.gamma = 2.0;
    const auto key_of = [&](const util::NodeId& id)
        -> std::optional<crypto::PublicKey> {
        const auto it = keys.find(id);
        if (it == keys.end()) return std::nullopt;
        return it->second;
    };
    for (auto _ : state) {
        benchmark::DoNotOptimize(core::validate_advertisement(
            ad, net.secure_table(0).density(), now, params, key_of,
            registry));
    }
}
BENCHMARK(BM_AdvertisementValidation);

}  // namespace

// Expanded BENCHMARK_MAIN() so we can strip --metrics-out / --bench-out
// (google-benchmark rejects flags it does not recognise) before handing
// argv over.
int main(int argc, char** argv) {
    std::string bench_out;
    std::vector<char*> kept;
    kept.reserve(static_cast<std::size_t>(argc));
    for (int i = 0; i < argc; ++i) {
        if (std::strcmp(argv[i], "--metrics-out") == 0 && i + 1 < argc) {
            concilium::bench::set_metrics_out(argv[++i]);
            continue;
        }
        if (std::strcmp(argv[i], "--bench-out") == 0 && i + 1 < argc) {
            bench_out = argv[++i];
            continue;
        }
        kept.push_back(argv[i]);
    }
    int kept_argc = static_cast<int>(kept.size());
    benchmark::Initialize(&kept_argc, kept.data());
    if (benchmark::ReportUnrecognizedArguments(kept_argc, kept.data())) {
        return 1;
    }
    benchmark::RunSpecifiedBenchmarks();

    // Perf trajectory: a fixed-size POD event-dispatch measurement, written
    // as BENCH_micro.json for tools/check_perf.py.  Independent of
    // --benchmark_filter so the gated number is always comparable.
    if (!bench_out.empty()) {
        concilium::bench::BenchReport report("micro");
        concilium::net::EventSim sim;
        PodChain chain;
        chain.sim = &sim;
        chain.handler = sim.register_handler(&chain, &PodChain::dispatch);
        for (int i = 0; i < 64; ++i) sim.post_after(i, chain.handler);
        // 64 chains x one event per 100 us => ~12.8M events over 20 sim-s.
        sim.run_until(20'000'000);
        report.finish();
        report.write(bench_out);
    }
    return 0;
}
