// Section 4.4: Concilium's bandwidth requirements (the paper reports these
// in prose; we render them as a table).
//
// Routing-state advertisement: mu_phi + 16 peers, 144 bytes per signed
// entry plus a 1-byte path summary -- "about 11.5 kilobytes" at 100k nodes.
// Heavyweight probing: C(peers, 2) * 100 stripes * 2 probes * 30 bytes --
// "16.7 MB of outgoing network traffic" for the average 100k-overlay node.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/bandwidth.h"

int main(int argc, char** argv) {
    using namespace concilium;
    const auto args = bench::parse_args(argc, argv);
    bench::BenchReport report("tab_bandwidth", args);
    const core::BandwidthModel model;

    bench::print_header("table-4.4", "protocol bandwidth model");
    bench::print_param("entry_bytes", 144);
    bench::print_param("path_summary_bytes", 1);
    bench::print_param("stripes_per_pair", 100);
    bench::print_param("probes_per_stripe", 2);
    bench::print_param("probe_bytes", 30);

    std::printf("%-10s %-14s %-14s %-16s %-18s\n", "N", "jump_entries",
                "routing_peers", "advert_bytes", "heavyweight_bytes");
    const std::vector<double> populations{1000.0,   5000.0,   10000.0,
                                          50000.0,  100000.0, 500000.0};
    const auto driver = bench::make_driver(args, 7);
    bench::print_rows(driver, populations.size(), [&](std::size_t row) {
        const double n = populations[row];
        const double peers = model.expected_routing_peers(n);
        char buf[128];
        std::snprintf(buf, sizeof buf, "%-10.0f %-14.2f %-14.2f %-16.0f %-18.0f\n",
                      n, model.expected_jump_entries(n), peers,
                      model.advertisement_bytes(n),
                      core::BandwidthModel::heavyweight_probe_bytes(peers));
        return std::string(buf);
    });
    const double peers100k = model.expected_routing_peers(100000);
    std::printf(
        "# at N=100000: %.1f peers, advertisement %.2f kB (paper: ~11.5 kB), "
        "heavyweight probe %.2f MB (paper: 16.7 MB)\n",
        peers100k, model.advertisement_bytes(100000) / 1000.0,
        core::BandwidthModel::heavyweight_probe_bytes(peers100k) /
            (1024.0 * 1024.0));
    return 0;
}
