// Section 3.7 / 4.4 implementation options, quantified:
//   * consolidated probing savings for co-located hosts,
//   * batched-acknowledgment wire sizes vs per-message acks,
//   * advertisement diffs vs full-table exchanges.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/extensions.h"

int main(int argc, char** argv) {
    using namespace concilium;
    const auto args = bench::parse_args(argc, argv);
    bench::BenchReport report("tab_extensions", args);

    bench::print_header("table-3.7", "implementation-option economics");

    // --- consolidated probing -------------------------------------------
    {
        const sim::Scenario world(bench::paper_scenario(args));
        const auto plan = core::plan_probe_sharing(
            world.overlay_net(), world.topology(), world.trees());
        std::printf("\n# section: consolidated probing (Section 3.7)\n");
        std::printf("%-26s %zu\n", "shared groups", plan.groups.size());
        std::printf("%-26s %zu\n", "solo members", plan.solo_members);
        std::size_t grouped = 0;
        double best = 1.0;
        for (const auto& g : plan.groups) {
            grouped += g.members.size();
            best = std::max(best, g.savings_factor());
        }
        std::printf("%-26s %zu\n", "grouped members", grouped);
        std::printf("%-26s %.2fx\n", "all-pairs byte ratio",
                    plan.mean_savings());
        std::printf("%-26s %.2fx\n", "best group byte ratio", best);
        std::printf("%-26s %.2fx\n", "mean link redundancy",
                    plan.mean_link_redundancy());
        std::printf("# consolidation removes the duplicate link coverage "
                    "(redundancy > 1); the all-pairs\n"
                    "# byte ratio shows naive rotation only pays when peer "
                    "sets overlap.\n");
    }

    // --- ack batching ------------------------------------------------------
    {
        std::printf("\n# section: acknowledgment batching (Section 3.7)\n");
        std::printf("%-12s %-16s %-16s %-16s\n", "messages", "per_message",
                    "counter", "hash_list");
        const auto keys = crypto::KeyPair::from_seed(1);
        const std::vector<std::size_t> batch_sizes{1, 10, 100, 1000};
        const auto driver = bench::make_driver(args, 37);
        bench::print_rows(driver, batch_sizes.size(), [&](std::size_t row) {
            const std::size_t n = batch_sizes[row];
            core::AckBatcher counter_batch(util::NodeId::from_hex("0a"),
                                           util::NodeId::from_hex("0b"));
            core::AckBatcher hash_batch(util::NodeId::from_hex("0a"),
                                        util::NodeId::from_hex("0b"));
            for (std::size_t id = 0; id < n; ++id) {
                counter_batch.record(id);
                hash_batch.record(id * 2);  // gaps force the hash encoding
            }
            char buf[96];
            std::snprintf(buf, sizeof buf, "%-12zu %-16zu %-16zu %-16zu\n", n,
                          core::BatchedAck::per_message_wire_bytes(n),
                          counter_batch.flush(0, keys).wire_bytes(),
                          hash_batch.flush(0, keys).wire_bytes());
            return std::string(buf);
        });
    }

    // --- advertisement diffs ------------------------------------------------
    {
        std::printf("\n# section: advertisement diffs (Section 4.4)\n");
        const core::BandwidthModel model;
        std::printf("%-20s %.0f bytes\n", "full table (N=100k)",
                    model.advertisement_bytes(100000));
        for (const int changed : {1, 4, 16, 64}) {
            std::printf("diff, %2d entries     %.0f bytes\n", changed,
                        core::advertisement_diff_bytes(changed));
        }
    }
    return 0;
}
