// End-to-end protocol run (this repo's strongest validation).
//
// The figure benches reproduce the paper's evaluation under its analytic
// assumptions; this bench instead runs the full event-driven protocol --
// real striped probes, MINC inference, signed snapshot gossip, forwarding
// commitments, acknowledgments, timeouts, revision pushes, DHT accusations
// -- on a failing network with injected message droppers, and scores the
// final diagnoses against ground truth.

#include <cstdio>

#include "bench_common.h"
#include "runtime/cluster.h"

int main(int argc, char** argv) {
    using namespace concilium;
    const auto args = bench::parse_args(argc, argv);

    // A smaller world than the figure benches: the runtime simulates every
    // probe packet.
    sim::ScenarioParams world_params;
    world_params.topology = net::small_params();
    world_params.topology.end_hosts = args.full ? 1500 : 600;
    world_params.topology.stub_domains = args.full ? 40 : 16;
    world_params.overlay_nodes_override = args.full ? 220 : 90;
    world_params.duration = 2 * util::kHour;
    world_params.seed = args.seed;
    const sim::Scenario world(world_params);

    const double dropper_fraction = 0.10;
    const std::size_t message_count =
        args.samples != 0 ? args.samples : (args.full ? 600 : 250);

    bench::print_header("runtime-e2e",
                        "full protocol run with droppers + link failures");
    bench::print_param("overlay_nodes",
                       static_cast<double>(world.overlay_net().size()));
    bench::print_param("dropper_fraction", dropper_fraction);
    bench::print_param("messages", static_cast<double>(message_count));
    bench::print_param("seed", static_cast<double>(args.seed));

    // 10% of nodes drop half the messages they should forward.
    util::Rng rng(args.seed + 71);
    std::vector<runtime::NodeBehavior> behaviors(world.overlay_net().size());
    const auto droppers = rng.sample_indices(
        behaviors.size(),
        static_cast<std::size_t>(dropper_fraction * behaviors.size()));
    for (const auto d : droppers) {
        behaviors[d].drop_forward_probability = 0.5;
    }

    net::EventSim sim;
    runtime::Cluster cluster(sim, world.timeline(), world.overlay_net(),
                             world.trees(), runtime::RuntimeParams{},
                             behaviors, rng.fork());
    cluster.start();
    sim.run_until(3 * util::kMinute);

    std::size_t correct_forwarder = 0;
    std::size_t wrong_forwarder = 0;
    std::size_t correct_network = 0;
    std::size_t wrong_network = 0;
    std::size_t delivered = 0;
    std::size_t undiagnosed = 0;

    const auto& overlay_net = world.overlay_net();
    for (std::size_t i = 0; i < message_count; ++i) {
        const auto from = static_cast<overlay::MemberIndex>(
            rng.uniform_index(overlay_net.size()));
        cluster.send(from, util::NodeId::random(rng),
                     [&](const runtime::Cluster::MessageOutcome& out) {
                         if (out.delivered) {
                             ++delivered;
                             return;
                         }
                         if (out.true_drop_hop.has_value()) {
                             const auto& culprit =
                                 overlay_net
                                     .member(out.route[*out.true_drop_hop])
                                     .id();
                             if (out.blamed == culprit) {
                                 ++correct_forwarder;
                             } else {
                                 ++wrong_forwarder;
                             }
                         } else if (out.true_network_drop) {
                             if (out.network_blamed) {
                                 ++correct_network;
                             } else {
                                 ++wrong_network;
                             }
                         } else {
                             ++undiagnosed;
                         }
                     });
        // Pace the workload across the virtual two hours.
        sim.run_until(sim.now() + 20 * util::kSecond);
    }
    sim.run_until(sim.now() + 5 * util::kMinute);

    // --- Phase B: a targeted stream through one deterministic dropper, so
    // forwarder diagnosis and the accusation pipeline get real load.
    std::size_t targeted_correct = 0;
    std::size_t targeted_total = 0;
    {
        util::Rng search(args.seed + 73);
        std::vector<overlay::MemberIndex> hops;
        overlay::MemberIndex from = 0;
        util::NodeId key;
        for (int attempt = 0; attempt < 50000 && hops.size() < 4; ++attempt) {
            from = static_cast<overlay::MemberIndex>(
                search.uniform_index(overlay_net.size()));
            key = util::NodeId::random(search);
            try {
                hops = overlay_net.route(from, key);
            } catch (const std::exception&) {
                hops.clear();
            }
        }
        if (hops.size() >= 4) {
            const overlay::MemberIndex dropper = hops[2];
            behaviors[dropper].drop_forward_probability = 1.0;
            net::EventSim sim2;
            runtime::Cluster targeted(sim2, world.timeline(),
                                      world.overlay_net(), world.trees(),
                                      runtime::RuntimeParams{}, behaviors,
                                      rng.fork());
            targeted.start();
            sim2.run_until(3 * util::kMinute);
            // Spread sends across the virtual run so down intervals on
            // the fixed route rotate.
            for (int i = 0; i < 60; ++i) {
                targeted.send(
                    from, key,
                    [&](const runtime::Cluster::MessageOutcome& out) {
                        if (!out.true_drop_hop.has_value()) return;
                        ++targeted_total;
                        const auto& culprit =
                            overlay_net.member(out.route[*out.true_drop_hop])
                                .id();
                        if (out.blamed == culprit) ++targeted_correct;
                    });
                sim2.run_until(sim2.now() + 90 * util::kSecond);
            }
            sim2.run_until(sim2.now() + 3 * util::kMinute);
            std::size_t verified_targeted = 0;
            const auto accs = targeted.accusations_against(dropper);
            for (const auto& acc : accs) {
                if (targeted.verify(acc) == core::AccusationCheck::kOk) {
                    ++verified_targeted;
                }
            }
            std::printf("%-28s %zu / %zu (accusations %zu, verified %zu)\n",
                        "targeted dropper diagnosed", targeted_correct,
                        targeted_total, accs.size(), verified_targeted);
            behaviors[dropper].drop_forward_probability = 0.0;
        }
    }

    const auto& stats = cluster.stats();
    std::printf("%-28s %zu\n", "messages", stats.messages);
    std::printf("%-28s %zu\n", "delivered", delivered);
    std::printf("%-28s %zu / %zu\n", "forwarder drops diagnosed",
                correct_forwarder, correct_forwarder + wrong_forwarder);
    std::printf("%-28s %zu / %zu\n", "network drops diagnosed",
                correct_network, correct_network + wrong_network);
    std::printf("%-28s %zu\n", "undiagnosed", undiagnosed);
    std::printf("%-28s %zu\n", "snapshots published",
                stats.snapshots_published);
    std::printf("%-28s %zu\n", "heavyweight sessions",
                stats.heavyweight_sessions);
    std::printf("%-28s %zu\n", "guilty verdicts", stats.guilty_verdicts);
    std::printf("%-28s %zu\n", "innocent verdicts",
                stats.innocent_verdicts);
    std::printf("%-28s %zu\n", "revisions pushed", stats.revisions_pushed);
    std::printf("%-28s %zu\n", "accusations filed",
                stats.accusations_filed);

    // Every accusation in the DHT must verify and must target a dropper.
    std::size_t verified = 0;
    std::size_t against_droppers = 0;
    std::size_t total = 0;
    std::vector<bool> is_dropper(behaviors.size(), false);
    for (const auto d : droppers) is_dropper[d] = true;
    for (overlay::MemberIndex m = 0; m < overlay_net.size(); ++m) {
        for (const auto& acc : cluster.accusations_against(m)) {
            ++total;
            if (cluster.verify(acc) == core::AccusationCheck::kOk) {
                ++verified;
            }
            if (is_dropper[m]) ++against_droppers;
        }
    }
    std::printf("%-28s %zu (verified %zu, against droppers %zu)\n",
                "accusations in DHT", total, verified, against_droppers);
    return 0;
}
