// End-to-end protocol run (this repo's strongest validation).
//
// The figure benches reproduce the paper's evaluation under its analytic
// assumptions; this bench instead runs the full event-driven protocol --
// real striped probes, MINC inference, signed snapshot gossip, forwarding
// commitments, acknowledgments, timeouts, revision pushes, DHT accusations
// -- on a failing network with injected message droppers, and scores the
// final diagnoses against ground truth.
//
// The two phases (targeted dropper stream; background workload + DHT audit)
// are independent simulations, so they run as two experiment-driver trials
// and can overlap on a multi-core machine; their reports print in a fixed
// order regardless of which finishes first.

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "core/trace.h"
#include "runtime/cluster.h"

namespace {

using namespace concilium;

void append(std::string& out, const char* fmt, auto... args) {
    char buf[192];
    std::snprintf(buf, sizeof buf, fmt, args...);
    out += buf;
}

/// One phase's report block plus its retained blame journal (empty unless
/// --trace-out is armed).
struct PhaseOut {
    std::string block;
    std::vector<core::DiagnosisRecord> trace_records;
    std::uint64_t trace_total = 0;
};

void capture_trace(PhaseOut& out, const core::DiagnosisTrace& trace) {
    if (!bench::trace_out_armed()) return;
    out.trace_records = trace.records();
    out.trace_total = trace.total_recorded();
}

}  // namespace

int main(int argc, char** argv) {
    using namespace concilium;
    const auto args = bench::parse_args(argc, argv);
    bench::BenchReport report("runtime_e2e");

    // A smaller world than the figure benches: the runtime simulates every
    // probe packet.
    sim::ScenarioParams world_params;
    world_params.topology = net::small_params();
    world_params.topology.end_hosts = args.full ? 1500 : 600;
    world_params.topology.stub_domains = args.full ? 40 : 16;
    world_params.overlay_nodes_override = args.full ? 220 : 90;
    world_params.duration = 2 * util::kHour;
    world_params.seed = args.seed;
    const sim::Scenario world(world_params);

    const double dropper_fraction = 0.10;
    const std::size_t message_count =
        args.samples != 0 ? args.samples : (args.full ? 600 : 250);

    bench::print_header("runtime-e2e",
                        "full protocol run with droppers + link failures");
    bench::print_param("overlay_nodes",
                       static_cast<double>(world.overlay_net().size()));
    bench::print_param("dropper_fraction", dropper_fraction);
    bench::print_param("messages", static_cast<double>(message_count));
    bench::print_param("seed", static_cast<double>(args.seed));

    const auto driver = bench::make_driver(args, 71);

    // 10% of nodes drop half the messages they should forward.  The dropper
    // set comes from the driver's setup stream so both phases see the same
    // behaviors without sharing a mutable generator.
    auto setup = driver.setup_rng();
    std::vector<runtime::NodeBehavior> behaviors(world.overlay_net().size());
    const auto droppers = setup.sample_indices(
        behaviors.size(),
        static_cast<std::size_t>(dropper_fraction * behaviors.size()));
    for (const auto d : droppers) {
        behaviors[d].drop_forward_probability = 0.5;
    }

    const auto& overlay_net = world.overlay_net();

    // --- trial 0: a targeted stream through one deterministic dropper, so
    // forwarder diagnosis and the accusation pipeline get real load.
    const auto targeted_phase = [&](util::Rng& rng) {
        PhaseOut phase;
        std::string& out = phase.block;
        std::vector<overlay::MemberIndex> hops;
        overlay::MemberIndex from = 0;
        util::NodeId key;
        for (int attempt = 0; attempt < 50000 && hops.size() < 4; ++attempt) {
            from = static_cast<overlay::MemberIndex>(
                rng.uniform_index(overlay_net.size()));
            key = util::NodeId::random(rng);
            try {
                hops = overlay_net.route(from, key);
            } catch (const std::exception&) {
                hops.clear();
            }
        }
        if (hops.size() < 4) return phase;
        std::size_t targeted_correct = 0;
        std::size_t targeted_total = 0;
        const overlay::MemberIndex dropper = hops[2];
        auto targeted_behaviors = behaviors;
        targeted_behaviors[dropper].drop_forward_probability = 1.0;
        core::DiagnosisTrace trace(256);
        net::EventSim sim;
        runtime::Cluster targeted(sim, world.timeline(), world.overlay_net(),
                                  world.trees(), runtime::RuntimeParams{},
                                  targeted_behaviors, rng.fork());
        targeted.set_trace(&trace);
        targeted.start();
        sim.run_until(3 * util::kMinute);
        // Spread sends across the virtual run so down intervals on the
        // fixed route rotate.
        for (int i = 0; i < 60; ++i) {
            targeted.send(from, key,
                          [&](const runtime::Cluster::MessageOutcome& res) {
                              if (!res.true_drop_hop.has_value()) return;
                              ++targeted_total;
                              const auto& culprit =
                                  overlay_net
                                      .member(res.route[*res.true_drop_hop])
                                      .id();
                              if (res.blamed == culprit) ++targeted_correct;
                          });
            sim.run_until(sim.now() + 90 * util::kSecond);
        }
        sim.run_until(sim.now() + 3 * util::kMinute);
        std::size_t verified_targeted = 0;
        const auto accs = targeted.accusations_against(dropper);
        for (const auto& acc : accs) {
            if (targeted.verify(acc) == core::AccusationCheck::kOk) {
                ++verified_targeted;
            }
        }
        append(out, "%-28s %zu / %zu (accusations %zu, verified %zu)\n",
               "targeted dropper diagnosed", targeted_correct, targeted_total,
               accs.size(), verified_targeted);
        capture_trace(phase, trace);
        return phase;
    };

    // --- trial 1: the background workload, scored against ground truth,
    // plus the audit of every accusation left in the DHT.
    const auto workload_phase = [&](util::Rng& rng) {
        PhaseOut phase;
        std::string& out = phase.block;
        core::DiagnosisTrace trace(512);
        net::EventSim sim;
        runtime::Cluster cluster(sim, world.timeline(), world.overlay_net(),
                                 world.trees(), runtime::RuntimeParams{},
                                 behaviors, rng.fork());
        cluster.set_trace(&trace);
        cluster.start();
        sim.run_until(3 * util::kMinute);

        std::size_t correct_forwarder = 0;
        std::size_t wrong_forwarder = 0;
        std::size_t correct_network = 0;
        std::size_t wrong_network = 0;
        std::size_t delivered = 0;
        std::size_t undiagnosed = 0;

        for (std::size_t i = 0; i < message_count; ++i) {
            const auto from = static_cast<overlay::MemberIndex>(
                rng.uniform_index(overlay_net.size()));
            cluster.send(from, util::NodeId::random(rng),
                         [&](const runtime::Cluster::MessageOutcome& res) {
                             if (res.delivered) {
                                 ++delivered;
                                 return;
                             }
                             if (res.true_drop_hop.has_value()) {
                                 const auto& culprit =
                                     overlay_net
                                         .member(res.route[*res.true_drop_hop])
                                         .id();
                                 if (res.blamed == culprit) {
                                     ++correct_forwarder;
                                 } else {
                                     ++wrong_forwarder;
                                 }
                             } else if (res.true_network_drop) {
                                 if (res.network_blamed) {
                                     ++correct_network;
                                 } else {
                                     ++wrong_network;
                                 }
                             } else {
                                 ++undiagnosed;
                             }
                         });
            // Pace the workload across the virtual two hours.
            sim.run_until(sim.now() + 20 * util::kSecond);
        }
        sim.run_until(sim.now() + 5 * util::kMinute);

        const auto& stats = cluster.stats();
        append(out, "%-28s %zu\n", "messages", stats.messages);
        append(out, "%-28s %zu\n", "delivered", delivered);
        append(out, "%-28s %zu / %zu\n", "forwarder drops diagnosed",
               correct_forwarder, correct_forwarder + wrong_forwarder);
        append(out, "%-28s %zu / %zu\n", "network drops diagnosed",
               correct_network, correct_network + wrong_network);
        append(out, "%-28s %zu\n", "undiagnosed", undiagnosed);
        append(out, "%-28s %zu\n", "snapshots published",
               stats.snapshots_published);
        append(out, "%-28s %zu\n", "heavyweight sessions",
               stats.heavyweight_sessions);
        append(out, "%-28s %zu\n", "guilty verdicts", stats.guilty_verdicts);
        append(out, "%-28s %zu\n", "innocent verdicts",
               stats.innocent_verdicts);
        append(out, "%-28s %zu\n", "revisions pushed",
               stats.revisions_pushed);
        append(out, "%-28s %zu\n", "accusations filed",
               stats.accusations_filed);

        // Every accusation in the DHT must verify and must target a dropper.
        std::size_t verified = 0;
        std::size_t against_droppers = 0;
        std::size_t total = 0;
        std::vector<bool> is_dropper(behaviors.size(), false);
        for (const auto d : droppers) is_dropper[d] = true;
        for (overlay::MemberIndex m = 0; m < overlay_net.size(); ++m) {
            for (const auto& acc : cluster.accusations_against(m)) {
                ++total;
                if (cluster.verify(acc) == core::AccusationCheck::kOk) {
                    ++verified;
                }
                if (is_dropper[m]) ++against_droppers;
            }
        }
        append(out, "%-28s %zu (verified %zu, against droppers %zu)\n",
               "accusations in DHT", total, verified, against_droppers);
        capture_trace(phase, trace);
        return phase;
    };

    driver.run(
        2,
        [&](std::uint64_t trial, util::Rng& rng) {
            return trial == 0 ? targeted_phase(rng) : workload_phase(rng);
        },
        [](std::uint64_t, PhaseOut&& phase) {
            std::fputs(phase.block.c_str(), stdout);
            bench::trace_sink_add(std::move(phase.trace_records),
                                  phase.trace_total);
        });

    // Perf trajectory: events/sec is the headline number tools/check_perf.py
    // gates on; bytes/diagnosis uses the paper's 30-byte probe cost over
    // every verdict the run produced.
    report.finish();
    auto& registry = util::metrics::Registry::global();
    const double probes = static_cast<double>(
        registry.counter("tomography.probes_issued").value());
    const double verdicts = static_cast<double>(
        registry.counter("core.verdicts_guilty").value() +
        registry.counter("core.verdicts_innocent").value());
    if (verdicts > 0.0) {
        report.set("bytes_per_diagnosis", 30.0 * probes / verdicts);
    }
    report.write(args.bench_out);
    return 0;
}
