// Figure 3: jump-table density-test error rates WITH suppression attacks.
//
// "We model these attacks by supplying our false positive/negative equations
// with the appropriately skewed versions of N" (Section 4.1): colluders
// suppress their identifiers from honest nodes' tables, so an honest peer's
// advertised table reflects only N(1-c) visible hosts, and the victim's own
// table (the d_local reference) is skewed the same way when colluders hide
// from it.
//
// Paper reference point: with c = 20%, FP 10.1% / FN 21.1%; checks beyond
// c = 20% are "not very reliable".

#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.h"
#include "overlay/density.h"

int main(int argc, char** argv) {
    using namespace concilium;
    const auto args = bench::parse_args(argc, argv);
    bench::BenchReport report("fig3_density_suppression", args);
    const util::OverlayGeometry geometry{.digits = 32};
    const double n = args.full ? 100000.0 : 10000.0;

    bench::print_header("3", "density-test errors under suppression attacks");
    bench::print_param("N", n);

    const std::vector<double> collusion{0.10, 0.20, 0.30};
    const auto driver = bench::make_driver(args, 3);

    std::printf("\n# section: (a)+(b) error rates vs gamma\n");
    std::printf("%-8s", "gamma");
    for (const double c : collusion) std::printf(" fp_c%-9.0f", c * 100);
    for (const double c : collusion) std::printf(" fn_c%-9.0f", c * 100);
    std::printf("\n");
    bench::print_rows(driver, 21, [&](std::size_t row) {
        const double gamma = 1.0 + 0.1 * static_cast<double>(row);
        char buf[64];
        std::snprintf(buf, sizeof buf, "%-8.2f", gamma);
        std::string line = buf;
        for (const double c : collusion) {
            // Honest peer's table misses the c colluders that hide from it.
            std::snprintf(buf, sizeof buf, " %-12.5f",
                          overlay::density_false_positive(
                              gamma, n, (1.0 - c) * n, geometry));
            line += buf;
        }
        for (const double c : collusion) {
            // Victim's local reference is skewed down; attacker pool is cN.
            std::snprintf(buf, sizeof buf, " %-12.5f",
                          overlay::density_false_negative(
                              gamma, (1.0 - c) * n, c * n, geometry));
            line += buf;
        }
        line += '\n';
        return line;
    });

    std::printf("\n# section: (c) optimal gamma per colluding fraction\n");
    std::printf("%-8s %-10s %-12s %-12s %-12s\n", "c", "gamma*", "fp", "fn",
                "fp+fn");
    bench::print_rows(driver, collusion.size(), [&](std::size_t row) {
        const double c = collusion[row];
        overlay::GammaChoice best;
        bool have = false;
        for (int s = 0; s < 301; ++s) {
            const double gamma = 1.0 + 3.0 * s / 300.0;
            overlay::GammaChoice choice;
            choice.gamma = gamma;
            choice.false_positive = overlay::density_false_positive(
                gamma, n, (1.0 - c) * n, geometry);
            choice.false_negative = overlay::density_false_negative(
                gamma, (1.0 - c) * n, c * n, geometry);
            if (!have || choice.total_error() < best.total_error()) {
                best = choice;
                have = true;
            }
        }
        char buf[96];
        std::snprintf(buf, sizeof buf, "%-8.2f %-10.3f %-12.5f %-12.5f %-12.5f\n",
                      c, best.gamma, best.false_positive, best.false_negative,
                      best.total_error());
        return std::string(buf);
    });
    std::printf("# paper: c=0.20 -> fp 0.101, fn 0.211\n");
    return 0;
}
