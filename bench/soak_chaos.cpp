// Chaos soak: the full protocol runtime under injected faults.
//
// Sweeps a base `--chaos` spec (default flap:0.02,churn:0.01) through
// intensity multipliers and, at each level, runs the event-driven cluster
// with every node honest: whatever goes wrong is the environment's fault,
// so any message whose diagnosis pins an IP-level drop on a node is a
// *false accusation*.  The sweep reports that rate per intensity -- the
// quantity tools/check_chaos.py gates the nightly build on -- along with
// delivery and retry counts showing how the bounded-backoff stewards and
// lossy snapshot exchange degrade.
//
// One driver trial per intensity level; each trial builds its fault plan
// from its own substream, so the table and the deterministic metrics
// section are byte-identical at any --jobs count.

#include <cstdio>
#include <string>

#include "bench_common.h"
#include "core/trace.h"
#include "runtime/cluster.h"
#include "util/metrics.h"

namespace {

using namespace concilium;

void append(std::string& out, const char* fmt, auto... args) {
    char buf[224];
    std::snprintf(buf, sizeof buf, fmt, args...);
    out += buf;
}

constexpr double kIntensities[] = {0.0, 0.5, 1.0, 2.0, 4.0};

/// One row of the sweep plus the trial's retained blame journal (empty
/// unless --trace-out is armed).
struct LevelOut {
    std::string row;
    std::vector<core::DiagnosisRecord> trace_records;
    std::uint64_t trace_total = 0;
};

}  // namespace

int main(int argc, char** argv) {
    using namespace concilium;
    const auto args = bench::parse_args(argc, argv);
    bench::BenchReport report("soak_chaos", args);

    net::FaultSpec base = args.chaos;
    if (base.empty()) {
        base = net::FaultSpec::parse("flap:0.02,churn:0.01");
    }

    // The runtime simulates every probe packet, so the world stays small
    // (the runtime_e2e scale).
    sim::ScenarioParams world_params;
    world_params.topology = net::small_params();
    world_params.topology.end_hosts = args.full ? 1500 : 600;
    world_params.topology.stub_domains = args.full ? 40 : 16;
    world_params.overlay_nodes_override = args.full ? 220 : 90;
    world_params.duration = 2 * util::kHour;
    world_params.seed = args.seed;
    const sim::Scenario world(world_params);
    const auto& overlay_net = world.overlay_net();

    const std::size_t message_count =
        args.samples != 0 ? args.samples : (args.full ? 300 : 120);

    bench::print_header("soak-chaos",
                        "false-accusation rate vs chaos intensity");
    bench::print_param("base_spec", base.to_string());
    bench::print_param("overlay_nodes",
                       static_cast<double>(overlay_net.size()));
    bench::print_param("messages", static_cast<double>(message_count));
    bench::print_param("seed", static_cast<double>(args.seed));
    std::printf("%-10s %-10s %-10s %-10s %-10s %-10s %-10s %-8s\n",
                "intensity", "delivered", "diagnosed", "false_acc",
                "false_rate", "retransmit", "churn", "trace");

    const auto driver = bench::make_driver(args, 93);
    const std::size_t levels = std::size(kIntensities);

    // Windowed sim-clock series: false accusations bucketed by the virtual
    // minute they were diagnosed in.  Sum mode commutes, so the exported
    // windows stay byte-identical at any --jobs count.
    auto& false_acc_by_minute = util::metrics::Registry::global().series(
        "chaos.false_accusations.by_minute", util::kMinute, 240,
        util::metrics::SeriesMetric::Mode::kSum);

    const auto run_level = [&](std::uint64_t trial, util::Rng& rng) {
        const double intensity = kIntensities[trial];
        const net::FaultSpec spec = base.scaled(intensity);

        // The plan is a pure function of the trial substream: byte-stable
        // at any worker count.
        auto plan_rng = rng.fork();
        const net::FaultPlan plan = net::build_fault_plan(
            spec, world_params.duration, world.trees().member_peer_paths(),
            overlay_net.size(), plan_rng);

        runtime::RuntimeParams params;
        // Chaos runs retransmit before judging, so transient IP loss does
        // not masquerade as a malicious drop.
        params.forward_retry.max_attempts = 3;
        core::DiagnosisTrace trace(512);
        net::EventSim sim;
        runtime::Cluster cluster(sim, world.timeline(), overlay_net,
                                 world.trees(), params, {}, rng.fork());
        cluster.set_chaos(&plan);
        cluster.set_trace(&trace);
        cluster.start();
        sim.run_until(3 * util::kMinute);

        std::size_t delivered = 0;
        std::size_t diagnosed = 0;
        std::size_t false_accusations = 0;
        std::size_t correct = 0;
        for (std::size_t i = 0; i < message_count; ++i) {
            const auto from = static_cast<overlay::MemberIndex>(
                rng.uniform_index(overlay_net.size()));
            cluster.send(
                from, util::NodeId::random(rng),
                [&](const runtime::Cluster::MessageOutcome& res) {
                    if (res.delivered) {
                        ++delivered;
                        return;
                    }
                    if (!res.true_drop_hop.has_value() &&
                        !res.true_network_drop) {
                        return;
                    }
                    ++diagnosed;
                    if (res.true_network_drop) {
                        // Everyone is honest: the IP network ate the
                        // message (or its ack), so blaming any node is a
                        // false accusation.
                        if (res.blamed.has_value()) {
                            ++false_accusations;
                            false_acc_by_minute.observe(sim.now());
                        } else if (res.network_blamed) {
                            ++correct;
                        }
                    } else {
                        // A hop dropped it -- under all-honest behaviors
                        // only a churned-out node can.  Naming exactly
                        // that node is correct; naming anyone else isn't.
                        const auto& culprit =
                            overlay_net.member(res.route[*res.true_drop_hop])
                                .id();
                        if (res.blamed == culprit) {
                            ++correct;
                        } else if (res.blamed.has_value()) {
                            ++false_accusations;
                            false_acc_by_minute.observe(sim.now());
                        }
                    }
                });
            // Pace the workload across the virtual two hours.
            sim.run_until(sim.now() + 45 * util::kSecond);
        }
        sim.run_until(sim.now() + 5 * util::kMinute);

        auto& reg = util::metrics::Registry::global();
        reg.counter("chaos.diagnosed_messages")
            .add(static_cast<std::int64_t>(diagnosed));
        reg.counter("chaos.false_accusations")
            .add(static_cast<std::int64_t>(false_accusations));
        reg.counter("chaos.correct_accusations")
            .add(static_cast<std::int64_t>(correct));

        const auto& stats = cluster.stats();
        const double rate =
            diagnosed == 0 ? 0.0
                           : static_cast<double>(false_accusations) /
                                 static_cast<double>(diagnosed);
        LevelOut out;
        append(out.row,
               "%-10.2g %-10zu %-10zu %-10zu %-10.4f %-10zu %-10zu %-8llu\n",
               intensity, delivered, diagnosed, false_accusations, rate,
               stats.forward_retransmissions,
               stats.churn_leaves + stats.churn_rejoins,
               static_cast<unsigned long long>(trace.total_recorded()));
        if (bench::trace_out_armed()) {
            out.trace_records = trace.records();
            out.trace_total = trace.total_recorded();
        }
        return out;
    };

    driver.run(
        levels,
        [&](std::uint64_t trial, util::Rng& rng) {
            return run_level(trial, rng);
        },
        [](std::uint64_t, LevelOut&& out) {
            std::fputs(out.row.c_str(), stdout);
            bench::trace_sink_add(std::move(out.trace_records),
                                  out.trace_total);
        });
    return 0;
}
