// Full-SCAN-scale slice (the perf-trajectory anchor).
//
// The paper's evaluation world is a SCAN-shaped topology with 112,969
// routers and 181,639 links (Section 4.2).  This bench builds that world
// (--full; the default is the medium preset so smoke runs stay fast) and
// drives a Figure-4-style forest-coverage slice over it with *intra-trial*
// sharding: the whole slice is one heavy trial, split over a fixed number
// of host shards via ExperimentDriver::run_shards.  Shard substreams plus
// the ordered merge keep stdout byte-identical across --jobs values --
// `bench_scale --full --jobs 1` and `--jobs 4` must diff clean.
//
// With --bench-out it also writes a BENCH_scale.json perf snapshot: wall
// time, world-build time, hosts/sec through the slice, and the arena bytes
// backing the flattened path storage.

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <optional>
#include <vector>

#include "bench_common.h"
#include "core/blame.h"
#include "sim/experiments.h"
#include "tomography/inference.h"
#include "tomography/probing.h"
#include "tomography/tree.h"
#include "util/spans.h"

int main(int argc, char** argv) {
    using namespace concilium;
    bool build_only = false;
    const auto args = bench::parse_args(
        argc, argv, [&](int& i, int /*argc*/, char** argv2) {
            if (std::strcmp(argv2[i], "--build-only") == 0) {
                build_only = true;
                return true;
            }
            return false;
        });
    bench::BenchReport report("scale");

    // --build-only exists to profile the world-build phases, so it records
    // spans even without --spans-out.
    if (build_only && !util::spans::enabled()) {
        util::spans::Recorder::global().enable();
    }

    const sim::ScenarioParams params = bench::paper_scenario(args);
    const double build_start = report.wall_seconds();
    std::optional<sim::Scenario> scenario_storage;
    {
        const util::spans::WallSpan span(util::spans::SpanType::kWorldBuild);
        scenario_storage.emplace(params);
    }
    const sim::Scenario& scenario = *scenario_storage;
    const double build_seconds = report.wall_seconds() - build_start;

    if (build_only) {
        bench::print_header("scale", "world build phase breakdown");
        bench::print_param(
            "routers",
            static_cast<double>(scenario.topology().router_count()));
        bench::print_param(
            "links", static_cast<double>(scenario.topology().link_count()));
        bench::print_param(
            "overlay_nodes",
            static_cast<double>(scenario.overlay_net().size()));
        bench::print_param("seed", static_cast<double>(args.seed));
        std::printf("%-18s %-10s\n", "phase", "seconds");
        for (const auto& ev : util::spans::Recorder::global().collect()) {
            if (ev.wall_begin == util::spans::kNoClock ||
                ev.wall_end == util::spans::kNoClock) {
                continue;
            }
            std::printf("%-18s %-10.3f\n", util::spans::span_name(ev.type),
                        static_cast<double>(ev.wall_end - ev.wall_begin) *
                            1e-9);
        }
        report.finish();
        report.set("build_seconds", build_seconds);
        report.write(args.bench_out);
        return 0;
    }

    const auto& net = scenario.overlay_net();
    const std::size_t sample_hosts = std::min<std::size_t>(
        args.samples != 0 ? args.samples : (args.full ? 400 : 120),
        net.size());

    bench::print_header("scale",
                        "full-SCAN coverage slice with intra-trial sharding");
    bench::print_param("routers",
                       static_cast<double>(scenario.topology().router_count()));
    bench::print_param("links",
                       static_cast<double>(scenario.topology().link_count()));
    bench::print_param("overlay_nodes", static_cast<double>(net.size()));
    bench::print_param("sampled_hosts", static_cast<double>(sample_hosts));
    bench::print_param("path_bytes",
                       static_cast<double>(scenario.trees().path_bytes()));
    bench::print_param("seed", static_cast<double>(args.seed));

    // Longest peer list bounds the coverage curve's x axis.
    std::size_t max_peers = 0;
    for (overlay::MemberIndex m = 0; m < net.size(); ++m) {
        max_peers = std::max(max_peers, net.routing_peers(m).size());
    }

    const auto driver = bench::make_driver(args, 43);
    util::Rng setup = driver.setup_rng();
    const auto hosts = setup.sample_indices(net.size(), sample_hosts);

    // The slice is ONE trial; the shards are the parallelism.  A fixed
    // shard count (not tied to --jobs) keeps the merge schedule -- and so
    // the accumulated floating-point sums -- identical at any worker count.
    constexpr std::size_t kShards = 64;
    struct ShardSums {
        std::vector<double> coverage;
        std::vector<double> vouchers;
        std::vector<int> hosts;
    };
    std::vector<double> coverage(max_peers + 1, 0.0);
    std::vector<double> vouchers(max_peers + 1, 0.0);
    std::vector<int> hosts_counted(max_peers + 1, 0);

    driver.run_shards(
        /*trial=*/0, kShards,
        [&](std::uint64_t s, util::Rng& rng) {
            ShardSums sums;
            sums.coverage.assign(max_peers + 1, 0.0);
            sums.vouchers.assign(max_peers + 1, 0.0);
            sums.hosts.assign(max_peers + 1, 0);
            // Shard s owns every (s + i * kShards)-th sampled host.
            for (std::size_t h = s; h < hosts.size(); h += kShards) {
                const auto m = static_cast<overlay::MemberIndex>(hosts[h]);
                std::vector<const tomography::ProbeTree*> trees{
                    &scenario.tree(m)};
                std::vector<overlay::MemberIndex> peers =
                    net.routing_peers(m);
                rng.shuffle(peers);
                for (const overlay::MemberIndex p : peers) {
                    trees.push_back(&scenario.tree(p));
                }
                const tomography::Forest forest(trees);
                for (std::size_t k = 0; k <= max_peers; ++k) {
                    if (k + 1 > trees.size()) break;
                    sums.coverage[k] += forest.coverage(k + 1);
                    sums.vouchers[k] += forest.mean_vouchers(k + 1);
                    ++sums.hosts[k];
                }
            }
            return sums;
        },
        [&](std::uint64_t, ShardSums&& sums) {
            for (std::size_t k = 0; k <= max_peers; ++k) {
                coverage[k] += sums.coverage[k];
                vouchers[k] += sums.vouchers[k];
                hosts_counted[k] += sums.hosts[k];
            }
        });

    std::printf("%-12s %-14s %-14s %-8s\n", "peer_trees", "coverage",
                "mean_vouchers", "hosts");
    for (std::size_t k = 0; k <= max_peers; ++k) {
        if (hosts_counted[k] == 0) break;
        std::printf("%-12zu %-14.4f %-14.3f %-8d\n", k,
                    coverage[k] / hosts_counted[k],
                    vouchers[k] / hosts_counted[k], hosts_counted[k]);
    }
    std::printf("# paper: own tree only covers ~0.25 of forest links\n");

    // Diagnosis slice: a handful of complete judge-side diagnoses at full
    // scale -- gather evidence, compute blame, corroborate with a
    // heavyweight MINC session -- so a --spans-out trace carries the
    // sim-clock diagnosis span types (probe_round, diagnosis, judgment,
    // heavyweight_session, mle_solve) next to the world-build phases.
    // Every draw comes from the trial substream and every emitted sim span
    // is scoped, so the summary line and the trace's sim section stay
    // byte-identical across --jobs values.
    const core::BlameParams blame_params = params.blame;
    const util::SimTime duration = params.duration;
    const auto pass = [&](net::LinkId l, util::SimTime t) {
        return scenario.timeline().is_up(l, t) ? 1.0 : 0.0;
    };
    struct SliceOut {
        bool valid = false;
        bool guilty = false;
        std::size_t probes = 0;
    };
    const std::size_t slice_samples = args.full ? 32 : 12;
    const auto slice_driver = bench::make_driver(args, 47);
    std::size_t judged = 0;
    std::size_t guilty_total = 0;
    std::size_t probe_total = 0;
    slice_driver.run(
        slice_samples,
        [&](std::uint64_t q, util::Rng& rng) {
            using util::spans::SpanType;
            SliceOut out;
            const auto triple = scenario.sample_triple(rng);
            if (!triple.has_value()) return out;
            const auto t = static_cast<util::SimTime>(rng.uniform(
                static_cast<double>(blame_params.delta),
                static_cast<double>(duration - blame_params.delta)));
            const auto path = scenario.path_links(triple->b, triple->c);
            const auto probes = scenario.gather_probes(
                triple->a, path, t, sim::Scenario::CollusionStance::kNone, q,
                /*reporter_cap=*/8);
            util::spans::sim_instant(SpanType::kProbeRound, t, q,
                                     static_cast<std::int64_t>(probes.size()));
            const auto breakdown = core::compute_blame(
                path, probes, t, scenario.overlay_net().member(triple->b).id(),
                blame_params);
            const bool guilty = breakdown.blame >= 0.5;
            util::spans::sim_span(SpanType::kDiagnosis,
                                  t - blame_params.delta,
                                  t + blame_params.delta, q, guilty ? 1 : 0);
            util::spans::sim_instant(SpanType::kJudgment, t, q,
                                     guilty ? 1 : 0);
            const auto& tree = scenario.tree(triple->a);
            if (!tree.leaves().empty()) {
                tomography::HeavyweightParams hw;
                hw.probe_count = 24;
                const auto session = tomography::run_heavyweight_session(
                    tree, pass, t, hw, {}, rng);
                util::spans::sim_span(SpanType::kHeavyweightSession,
                                     session.started_at, session.finished_at,
                                     q, hw.probe_count);
                const auto inference =
                    tomography::infer_link_loss(tree, session.probes);
                util::spans::sim_instant(
                    SpanType::kMleSolve, session.finished_at, q,
                    static_cast<std::int64_t>(inference.links.size()));
            }
            out.valid = true;
            out.guilty = guilty;
            out.probes = probes.size();
            return out;
        },
        [&](std::uint64_t, SliceOut&& out) {
            if (!out.valid) return;
            ++judged;
            guilty_total += out.guilty ? 1 : 0;
            probe_total += out.probes;
        });
    std::printf(
        "diagnosis slice: %zu judged, %zu guilty, %zu probe observations\n",
        judged, guilty_total, probe_total);

    report.finish();
    report.set("build_seconds", build_seconds);
    report.set_rate("hosts", static_cast<double>(sample_hosts));
    report.set("path_bytes",
               static_cast<double>(scenario.trees().path_bytes()));
    report.write(args.bench_out);
    return 0;
}
