// Full-SCAN-scale slice (the perf-trajectory anchor).
//
// The paper's evaluation world is a SCAN-shaped topology with 112,969
// routers and 181,639 links (Section 4.2).  This bench builds that world
// (--full; the default is the medium preset so smoke runs stay fast) and
// drives a Figure-4-style forest-coverage slice over it with *intra-trial*
// sharding: the whole slice is one heavy trial, split over a fixed number
// of host shards via ExperimentDriver::run_shards.  Shard substreams plus
// the ordered merge keep stdout byte-identical across --jobs values --
// `bench_scale --full --jobs 1` and `--jobs 4` must diff clean.
//
// With --bench-out it also writes a BENCH_scale.json perf snapshot: wall
// time, world-build time, hosts/sec through the slice, and the arena bytes
// backing the flattened path storage.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench_common.h"
#include "sim/experiments.h"
#include "tomography/tree.h"

int main(int argc, char** argv) {
    using namespace concilium;
    const auto args = bench::parse_args(argc, argv);
    bench::BenchReport report("scale");

    const sim::ScenarioParams params = bench::paper_scenario(args);
    const double build_start = report.wall_seconds();
    const sim::Scenario scenario(params);
    const double build_seconds = report.wall_seconds() - build_start;

    const auto& net = scenario.overlay_net();
    const std::size_t sample_hosts = std::min<std::size_t>(
        args.samples != 0 ? args.samples : (args.full ? 400 : 120),
        net.size());

    bench::print_header("scale",
                        "full-SCAN coverage slice with intra-trial sharding");
    bench::print_param("routers",
                       static_cast<double>(scenario.topology().router_count()));
    bench::print_param("links",
                       static_cast<double>(scenario.topology().link_count()));
    bench::print_param("overlay_nodes", static_cast<double>(net.size()));
    bench::print_param("sampled_hosts", static_cast<double>(sample_hosts));
    bench::print_param("path_bytes",
                       static_cast<double>(scenario.trees().path_bytes()));
    bench::print_param("seed", static_cast<double>(args.seed));

    // Longest peer list bounds the coverage curve's x axis.
    std::size_t max_peers = 0;
    for (overlay::MemberIndex m = 0; m < net.size(); ++m) {
        max_peers = std::max(max_peers, net.routing_peers(m).size());
    }

    const auto driver = bench::make_driver(args, 43);
    util::Rng setup = driver.setup_rng();
    const auto hosts = setup.sample_indices(net.size(), sample_hosts);

    // The slice is ONE trial; the shards are the parallelism.  A fixed
    // shard count (not tied to --jobs) keeps the merge schedule -- and so
    // the accumulated floating-point sums -- identical at any worker count.
    constexpr std::size_t kShards = 64;
    struct ShardSums {
        std::vector<double> coverage;
        std::vector<double> vouchers;
        std::vector<int> hosts;
    };
    std::vector<double> coverage(max_peers + 1, 0.0);
    std::vector<double> vouchers(max_peers + 1, 0.0);
    std::vector<int> hosts_counted(max_peers + 1, 0);

    driver.run_shards(
        /*trial=*/0, kShards,
        [&](std::uint64_t s, util::Rng& rng) {
            ShardSums sums;
            sums.coverage.assign(max_peers + 1, 0.0);
            sums.vouchers.assign(max_peers + 1, 0.0);
            sums.hosts.assign(max_peers + 1, 0);
            // Shard s owns every (s + i * kShards)-th sampled host.
            for (std::size_t h = s; h < hosts.size(); h += kShards) {
                const auto m = static_cast<overlay::MemberIndex>(hosts[h]);
                std::vector<const tomography::ProbeTree*> trees{
                    &scenario.tree(m)};
                std::vector<overlay::MemberIndex> peers =
                    net.routing_peers(m);
                rng.shuffle(peers);
                for (const overlay::MemberIndex p : peers) {
                    trees.push_back(&scenario.tree(p));
                }
                const tomography::Forest forest(trees);
                for (std::size_t k = 0; k <= max_peers; ++k) {
                    if (k + 1 > trees.size()) break;
                    sums.coverage[k] += forest.coverage(k + 1);
                    sums.vouchers[k] += forest.mean_vouchers(k + 1);
                    ++sums.hosts[k];
                }
            }
            return sums;
        },
        [&](std::uint64_t, ShardSums&& sums) {
            for (std::size_t k = 0; k <= max_peers; ++k) {
                coverage[k] += sums.coverage[k];
                vouchers[k] += sums.vouchers[k];
                hosts_counted[k] += sums.hosts[k];
            }
        });

    std::printf("%-12s %-14s %-14s %-8s\n", "peer_trees", "coverage",
                "mean_vouchers", "hosts");
    for (std::size_t k = 0; k <= max_peers; ++k) {
        if (hosts_counted[k] == 0) break;
        std::printf("%-12zu %-14.4f %-14.3f %-8d\n", k,
                    coverage[k] / hosts_counted[k],
                    vouchers[k] / hosts_counted[k], hosts_counted[k]);
    }
    std::printf("# paper: own tree only covers ~0.25 of forest links\n");

    report.finish();
    report.set("build_seconds", build_seconds);
    report.set_rate("hosts", static_cast<double>(sample_hosts));
    report.set("path_bytes",
               static_cast<double>(scenario.trees().path_bytes()));
    report.write(args.bench_out);
    return 0;
}
